#include <gtest/gtest.h>

#include "crypto/keyring.h"
#include "dssp/app.h"
#include "workloads/toystore.h"

namespace dssp::service {
namespace {

using analysis::ExposureAssignment;
using analysis::ExposureLevel;
using sql::Value;

class AppTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = std::make_unique<ScalableApp>(
        "toystore", &dssp_, crypto::KeyRing::FromPassphrase("test-secret"));
    ASSERT_TRUE(toystore_.Setup(*app_, 1.0, 7).ok());
    ASSERT_TRUE(app_->Finalize().ok());
  }

  Status SetUniformExposure(ExposureLevel query_level,
                            ExposureLevel update_level) {
    ExposureAssignment exposure = ExposureAssignment::FullExposure(
        app_->templates().num_queries(), app_->templates().num_updates());
    for (auto& level : exposure.query_levels) level = query_level;
    for (auto& level : exposure.update_levels) level = update_level;
    return app_->SetExposure(exposure);
  }

  DsspNode dssp_;
  std::unique_ptr<ScalableApp> app_;
  workloads::ToystoreApplication toystore_;
};

TEST_F(AppTest, FinalizeIsRequiredAndUnique) {
  DsspNode node;
  ScalableApp fresh("x", &node, crypto::KeyRing::FromPassphrase("k"));
  EXPECT_EQ(fresh.Query("Q1", {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(app_->Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST_F(AppTest, QueryReturnsCorrectResultAtEveryLevel) {
  for (ExposureLevel level :
       {ExposureLevel::kView, ExposureLevel::kStmt, ExposureLevel::kTemplate,
        ExposureLevel::kBlind}) {
    ASSERT_TRUE(SetUniformExposure(level, ExposureLevel::kStmt).ok());
    auto result = app_->Query("Q2", {Value(5)});
    ASSERT_TRUE(result.ok()) << ExposureLevelName(level);
    ASSERT_EQ(result->num_rows(), 1u) << ExposureLevelName(level);
    // qty of toy 5 is (5*7)%100+1 = 36.
    EXPECT_EQ(result->rows()[0][0], Value(36)) << ExposureLevelName(level);
  }
}

TEST_F(AppTest, SecondQueryHitsAtEveryLevel) {
  for (ExposureLevel level :
       {ExposureLevel::kView, ExposureLevel::kStmt, ExposureLevel::kTemplate,
        ExposureLevel::kBlind}) {
    ASSERT_TRUE(SetUniformExposure(level, ExposureLevel::kStmt).ok());
    AccessStats stats;
    ASSERT_TRUE(app_->Query("Q2", {Value(9)}, &stats).ok());
    EXPECT_FALSE(stats.cache_hit);
    EXPECT_GT(stats.wan_request_bytes, 0u);
    ASSERT_TRUE(app_->Query("Q2", {Value(9)}, &stats).ok());
    EXPECT_TRUE(stats.cache_hit) << ExposureLevelName(level);
    EXPECT_EQ(stats.wan_request_bytes, 0u);
    // Different parameters still miss.
    ASSERT_TRUE(app_->Query("Q2", {Value(10)}, &stats).ok());
    EXPECT_FALSE(stats.cache_hit);
  }
}

TEST_F(AppTest, UpdateInvalidatesAffectedEntriesOnly) {
  // Full exposure (default): MVIS-grade invalidation.
  AccessStats stats;
  ASSERT_TRUE(app_->Query("Q2", {Value(5)}, &stats).ok());
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}, &stats).ok());
  ASSERT_TRUE(app_->Query("Q3", {Value(10001)}, &stats).ok());
  EXPECT_EQ(dssp_.CacheSize("toystore"), 3u);

  // Delete toy 5: only Q2(5) dies.
  ASSERT_TRUE(app_->Update("U1", {Value(5)}, &stats).ok());
  EXPECT_EQ(stats.entries_invalidated, 1u);
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}, &stats).ok());
  EXPECT_TRUE(stats.cache_hit);
  ASSERT_TRUE(app_->Query("Q2", {Value(5)}, &stats).ok());
  EXPECT_FALSE(stats.cache_hit);
  EXPECT_EQ(app_->Query("Q2", {Value(5)})->num_rows(), 0u + 1u - 1u);
}

TEST_F(AppTest, BlindExposureInvalidatesEverything) {
  ASSERT_TRUE(
      SetUniformExposure(ExposureLevel::kBlind, ExposureLevel::kBlind).ok());
  AccessStats stats;
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}, &stats).ok());
  ASSERT_TRUE(app_->Query("Q3", {Value(10001)}, &stats).ok());
  ASSERT_TRUE(app_->Update("U1", {Value(5)}, &stats).ok());
  EXPECT_EQ(stats.entries_invalidated, 2u);
  EXPECT_EQ(dssp_.CacheSize("toystore"), 0u);
}

TEST_F(AppTest, TemplateExposureSparesIgnorableTemplates) {
  ASSERT_TRUE(SetUniformExposure(ExposureLevel::kTemplate,
                                 ExposureLevel::kTemplate)
                  .ok());
  AccessStats stats;
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}, &stats).ok());
  ASSERT_TRUE(app_->Query("Q3", {Value(10001)}, &stats).ok());
  // U1 (delete toys) is ignorable for Q3 but not Q2.
  ASSERT_TRUE(app_->Update("U1", {Value(5)}, &stats).ok());
  EXPECT_EQ(stats.entries_invalidated, 1u);
  ASSERT_TRUE(app_->Query("Q3", {Value(10001)}, &stats).ok());
  EXPECT_TRUE(stats.cache_hit);
}

TEST_F(AppTest, ResultsAreConsistentAfterUpdates) {
  // The DSSP-served answer always matches a direct master-database query.
  ASSERT_TRUE(app_->Query("Q2", {Value(5)}).ok());
  ASSERT_TRUE(app_->Update("U1", {Value(5)}).ok());
  const auto cached = app_->Query("Q2", {Value(5)});
  ASSERT_TRUE(cached.ok());
  const auto direct =
      app_->home().database().Query("SELECT qty FROM toys WHERE toy_id = 5");
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(cached->SameResult(*direct));
  EXPECT_EQ(cached->num_rows(), 0u);
}

TEST_F(AppTest, SetExposureValidation) {
  ExposureAssignment bad = ExposureAssignment::FullExposure(
      app_->templates().num_queries(), app_->templates().num_updates());
  bad.query_levels.pop_back();
  EXPECT_EQ(app_->SetExposure(bad).code(), StatusCode::kInvalidArgument);

  ExposureAssignment view_update = ExposureAssignment::FullExposure(
      app_->templates().num_queries(), app_->templates().num_updates());
  view_update.update_levels[0] = ExposureLevel::kView;
  EXPECT_EQ(app_->SetExposure(view_update).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AppTest, SetExposureClearsCache) {
  ASSERT_TRUE(app_->Query("Q2", {Value(5)}).ok());
  EXPECT_EQ(dssp_.CacheSize("toystore"), 1u);
  ASSERT_TRUE(
      SetUniformExposure(ExposureLevel::kStmt, ExposureLevel::kStmt).ok());
  EXPECT_EQ(dssp_.CacheSize("toystore"), 0u);
}

TEST_F(AppTest, UnknownTemplateAndBadArity) {
  EXPECT_EQ(app_->Query("Q99", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(app_->Update("U99", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(app_->Query("Q2", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(app_->Update("U1", {Value(1), Value(2)}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AppTest, UpdateEffectPropagates) {
  AccessStats stats;
  auto effect = app_->Update("U1", {Value(5)}, &stats);
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 1u);
  EXPECT_EQ(stats.rows_affected, 1u);
  EXPECT_TRUE(stats.is_update);
  effect = app_->Update("U1", {Value(5)});
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 0u);
}

TEST_F(AppTest, ConstraintViolationSurfacesToCaller) {
  // Customer 1 already has a card (cid is the PK of credit_card).
  const auto effect = app_->Update(
      "U2", {Value(1), Value("4000-dup"), Value(10001)});
  ASSERT_FALSE(effect.ok());
  EXPECT_EQ(effect.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(AppTest, TwoAppsAreIsolated) {
  ScalableApp other("toystore2", &dssp_,
                    crypto::KeyRing::FromPassphrase("other-secret"));
  workloads::ToystoreApplication toystore2;
  ASSERT_TRUE(toystore2.Setup(other, 1.0, 8).ok());
  ASSERT_TRUE(other.Finalize().ok());

  ASSERT_TRUE(app_->Query("Q2", {Value(5)}).ok());
  ASSERT_TRUE(other.Query("Q2", {Value(5)}).ok());
  EXPECT_EQ(dssp_.CacheSize("toystore"), 1u);
  EXPECT_EQ(dssp_.CacheSize("toystore2"), 1u);

  // An update in app 2 never invalidates app 1's entries.
  AccessStats stats;
  ASSERT_TRUE(other.Update("U1", {Value(5)}, &stats).ok());
  EXPECT_EQ(dssp_.CacheSize("toystore"), 1u);
  EXPECT_EQ(dssp_.CacheSize("toystore2"), 0u);

  // And app 1's data is unchanged.
  const auto r = app_->Query("Q2", {Value(5)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1u);
}

TEST_F(AppTest, DsspStatsAccumulate) {
  AccessStats stats;
  ASSERT_TRUE(app_->Query("Q2", {Value(5)}, &stats).ok());
  ASSERT_TRUE(app_->Query("Q2", {Value(5)}, &stats).ok());
  ASSERT_TRUE(app_->Update("U1", {Value(5)}, &stats).ok());
  const DsspStats& s = dssp_.stats("toystore");
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.updates_observed, 1u);
  EXPECT_EQ(s.entries_invalidated, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST_F(AppTest, NodeRejectsDuplicateRegistration) {
  EXPECT_EQ(dssp_.RegisterApp("toystore", &app_->home().database().catalog(),
                              &app_->templates())
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(dssp_.HasApp("toystore"));
  EXPECT_FALSE(dssp_.HasApp("ghost"));
}

}  // namespace
}  // namespace dssp::service
