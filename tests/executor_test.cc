#include <gtest/gtest.h>

#include "engine/database.h"
#include "sql/parser.h"

namespace dssp::engine {
namespace {

using catalog::ColumnType;
using catalog::ForeignKey;
using catalog::TableSchema;
using sql::Value;

// A small fixture database with toys, customers, and orders.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("toys",
                                            {{"toy_id", ColumnType::kInt64},
                                             {"toy_name", ColumnType::kString},
                                             {"qty", ColumnType::kInt64},
                                             {"price", ColumnType::kDouble}},
                                            {"toy_id"}))
                    .ok());
    ASSERT_TRUE(
        db_.CreateTable(TableSchema("customers",
                                    {{"cust_id", ColumnType::kInt64},
                                     {"cust_name", ColumnType::kString}},
                                    {"cust_id"}))
            .ok());
    ASSERT_TRUE(db_.CreateTable(TableSchema(
                       "orders",
                       {{"o_id", ColumnType::kInt64},
                        {"o_cust", ColumnType::kInt64},
                        {"o_toy", ColumnType::kInt64},
                        {"o_qty", ColumnType::kInt64}},
                       {"o_id"},
                       {ForeignKey{"o_cust", "customers", "cust_id"},
                        ForeignKey{"o_toy", "toys", "toy_id"}}))
                    .ok());

    Insert("toys", {Value(1), Value("car"), Value(10), Value(9.99)});
    Insert("toys", {Value(2), Value("doll"), Value(5), Value(19.99)});
    Insert("toys", {Value(3), Value("ball"), Value(50), Value(4.99)});
    Insert("toys", {Value(4), Value("car"), Value(2), Value(14.99)});
    Insert("customers", {Value(1), Value("alice")});
    Insert("customers", {Value(2), Value("bob")});
    Insert("orders", {Value(1), Value(1), Value(1), Value(2)});
    Insert("orders", {Value(2), Value(1), Value(3), Value(1)});
    Insert("orders", {Value(3), Value(2), Value(2), Value(4)});
  }

  void Insert(const std::string& table, Row row) {
    ASSERT_TRUE(db_.InsertRow(table, std::move(row)).ok());
  }

  QueryResult Run(const std::string& sql) {
    auto result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult();
  }

  Database db_;
};

TEST_F(ExecutorTest, EqualitySelection) {
  const QueryResult r = Run("SELECT qty FROM toys WHERE toy_id = 2");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value(5));
}

TEST_F(ExecutorTest, EqualityOnNonKeyColumnMultipleMatches) {
  const QueryResult r = Run("SELECT toy_id FROM toys WHERE toy_name = 'car'");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(ExecutorTest, InequalitySelections) {
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE qty > 5").num_rows(), 2u);
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE qty >= 5").num_rows(), 3u);
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE qty < 5").num_rows(), 1u);
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE qty <= 5").num_rows(), 2u);
}

TEST_F(ExecutorTest, ConjunctivePredicates) {
  const QueryResult r = Run(
      "SELECT toy_id FROM toys WHERE toy_name = 'car' AND qty > 5");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value(1));
}

TEST_F(ExecutorTest, DoubleComparisons) {
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE price < 10.0").num_rows(), 2u);
  // Int literal compares against double column numerically.
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE price > 10").num_rows(), 2u);
}

TEST_F(ExecutorTest, SelectStarExpandsAllColumns) {
  const QueryResult r = Run("SELECT * FROM toys WHERE toy_id = 1");
  ASSERT_EQ(r.num_columns(), 4u);
  EXPECT_EQ(r.column_names()[0], "toys.toy_id");
  EXPECT_EQ(r.column_names()[3], "toys.price");
}

TEST_F(ExecutorTest, EquiJoinViaHashJoin) {
  const QueryResult r = Run(
      "SELECT cust_name, o_qty FROM customers, orders "
      "WHERE cust_id = o_cust AND o_toy = 1");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value("alice"));
  EXPECT_EQ(r.rows()[0][1], Value(2));
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  const QueryResult r = Run(
      "SELECT cust_name, toy_name FROM customers, orders, toys "
      "WHERE cust_id = o_cust AND o_toy = toy_id AND cust_name = 'alice'");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(ExecutorTest, SelfJoinWithAliases) {
  // Pairs of distinct toys with the same name.
  const QueryResult r = Run(
      "SELECT t1.toy_id, t2.toy_id FROM toys AS t1, toys AS t2 "
      "WHERE t1.toy_name = t2.toy_name AND t1.toy_id < t2.toy_id");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value(1));
  EXPECT_EQ(r.rows()[0][1], Value(4));
}

TEST_F(ExecutorTest, InequalityJoinNestedLoop) {
  const QueryResult r = Run(
      "SELECT t1.toy_id, t2.toy_id FROM toys AS t1, toys AS t2 "
      "WHERE t1.qty > t2.qty AND t2.toy_name = 'doll'");
  // Toys with qty > 5: ids 1 (10) and 3 (50).
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(ExecutorTest, OrderByAscendingAndDescending) {
  const QueryResult asc = Run(
      "SELECT toy_id FROM toys WHERE qty >= 0 ORDER BY qty");
  ASSERT_EQ(asc.num_rows(), 4u);
  EXPECT_TRUE(asc.ordered());
  EXPECT_EQ(asc.rows()[0][0], Value(4));
  EXPECT_EQ(asc.rows()[3][0], Value(3));

  const QueryResult desc = Run(
      "SELECT toy_id FROM toys WHERE qty >= 0 ORDER BY qty DESC");
  EXPECT_EQ(desc.rows()[0][0], Value(3));
}

TEST_F(ExecutorTest, OrderByUnprojectedColumn) {
  const QueryResult r = Run(
      "SELECT toy_name FROM toys WHERE qty >= 0 ORDER BY price DESC LIMIT 1");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value("doll"));
}

TEST_F(ExecutorTest, OrderByMultipleKeysStable) {
  const QueryResult r = Run(
      "SELECT toy_id FROM toys WHERE qty >= 0 ORDER BY toy_name, qty DESC");
  ASSERT_EQ(r.num_rows(), 4u);
  // ball(50), car(10), car(2), doll(5).
  EXPECT_EQ(r.rows()[0][0], Value(3));
  EXPECT_EQ(r.rows()[1][0], Value(1));
  EXPECT_EQ(r.rows()[2][0], Value(4));
  EXPECT_EQ(r.rows()[3][0], Value(2));
}

TEST_F(ExecutorTest, TopK) {
  const QueryResult r = Run(
      "SELECT toy_id FROM toys WHERE qty >= 0 ORDER BY qty DESC LIMIT 2");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.rows()[0][0], Value(3));
  EXPECT_EQ(r.rows()[1][0], Value(1));
}

TEST_F(ExecutorTest, LimitZeroAndOversized) {
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE qty >= 0 LIMIT 0").num_rows(),
            0u);
  EXPECT_EQ(
      Run("SELECT toy_id FROM toys WHERE qty >= 0 LIMIT 100").num_rows(), 4u);
}

TEST_F(ExecutorTest, GlobalAggregates) {
  const QueryResult r = Run(
      "SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty), AVG(qty) FROM toys "
      "WHERE qty >= 0");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value(4));
  EXPECT_EQ(r.rows()[0][1], Value(67));
  EXPECT_EQ(r.rows()[0][2], Value(2));
  EXPECT_EQ(r.rows()[0][3], Value(50));
  EXPECT_DOUBLE_EQ(r.rows()[0][4].AsDouble(), 67.0 / 4);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  const QueryResult r = Run(
      "SELECT COUNT(*), MAX(qty) FROM toys WHERE qty > 1000");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value(0));
  EXPECT_TRUE(r.rows()[0][1].is_null());
}

TEST_F(ExecutorTest, GroupBy) {
  const QueryResult r = Run(
      "SELECT toy_name, COUNT(toy_id), SUM(qty) FROM toys WHERE qty >= 0 "
      "GROUP BY toy_name ORDER BY toy_name");
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.rows()[0][0], Value("ball"));
  EXPECT_EQ(r.rows()[1][0], Value("car"));
  EXPECT_EQ(r.rows()[1][1], Value(2));
  EXPECT_EQ(r.rows()[1][2], Value(12));
  EXPECT_EQ(r.rows()[2][0], Value("doll"));
}

TEST_F(ExecutorTest, GroupByOverEmptyInputYieldsNoRows) {
  const QueryResult r = Run(
      "SELECT toy_name, COUNT(toy_id) FROM toys WHERE qty > 1000 "
      "GROUP BY toy_name");
  EXPECT_EQ(r.num_rows(), 0u);
}

TEST_F(ExecutorTest, GroupByWithJoin) {
  const QueryResult r = Run(
      "SELECT cust_name, SUM(o_qty) FROM customers, orders "
      "WHERE cust_id = o_cust GROUP BY cust_name ORDER BY cust_name");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.rows()[0][1], Value(3));  // alice: 2 + 1.
  EXPECT_EQ(r.rows()[1][1], Value(4));  // bob.
}

TEST_F(ExecutorTest, NonAggregatedColumnMustBeGrouped) {
  EXPECT_FALSE(
      db_.Query("SELECT toy_name, qty FROM toys WHERE qty > 0 "
                "GROUP BY toy_name")
          .ok());
}

TEST_F(ExecutorTest, MultisetSemanticsKeepDuplicates) {
  const QueryResult r = Run("SELECT toy_name FROM toys WHERE qty >= 0");
  EXPECT_EQ(r.num_rows(), 4u);  // 'car' appears twice; no dedup.
}

TEST_F(ExecutorTest, NullComparisonsAreFalse) {
  ASSERT_TRUE(
      db_.InsertRow("toys", {Value(9), Value::Null(), Value::Null(),
                             Value::Null()})
          .ok());
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE qty >= 0").num_rows(), 4u);
  EXPECT_EQ(Run("SELECT toy_id FROM toys WHERE toy_name = 'car'").num_rows(),
            2u);
}

TEST_F(ExecutorTest, AggregatesSkipNulls) {
  ASSERT_TRUE(
      db_.InsertRow("toys", {Value(9), Value("x"), Value::Null(),
                             Value::Null()})
          .ok());
  const QueryResult r = Run(
      "SELECT COUNT(*), COUNT(qty), SUM(qty) FROM toys WHERE toy_id >= 1");
  EXPECT_EQ(r.rows()[0][0], Value(5));
  EXPECT_EQ(r.rows()[0][1], Value(4));
  EXPECT_EQ(r.rows()[0][2], Value(67));
}

TEST_F(ExecutorTest, BinderErrors) {
  EXPECT_FALSE(db_.Query("SELECT nope FROM toys WHERE toy_id = 1").ok());
  EXPECT_FALSE(db_.Query("SELECT toy_id FROM ghost WHERE toy_id = 1").ok());
  // Ambiguous column across a self join.
  EXPECT_FALSE(
      db_.Query("SELECT toy_id FROM toys AS a, toys AS b "
                "WHERE a.toy_id = b.toy_id")
          .ok());
  // Duplicate effective name.
  EXPECT_FALSE(
      db_.Query("SELECT a.toy_id FROM toys AS a, toys AS a "
                "WHERE a.toy_id = 1")
          .ok());
  // Unbound parameter.
  EXPECT_FALSE(db_.Query("SELECT toy_id FROM toys WHERE toy_id = ?").ok());
  // Incomparable types.
  EXPECT_FALSE(db_.Query("SELECT toy_id FROM toys WHERE toy_name > 5").ok());
}

TEST_F(ExecutorTest, CrossProductWhenNoPredicates) {
  // The engine supports it even though the analysis model forbids it.
  const QueryResult r = Run("SELECT cust_id, toy_id FROM customers, toys");
  EXPECT_EQ(r.num_rows(), 8u);
}

TEST_F(ExecutorTest, JoinColumnOrderInsensitive) {
  const QueryResult a = Run(
      "SELECT o_id FROM customers, orders WHERE cust_id = o_cust");
  const QueryResult b = Run(
      "SELECT o_id FROM customers, orders WHERE o_cust = cust_id");
  EXPECT_TRUE(a.SameResult(b));
}

TEST_F(ExecutorTest, EmptyTableQueries) {
  ASSERT_TRUE(db_.CreateTable(TableSchema("void",
                                          {{"v", ColumnType::kInt64}},
                                          {"v"}))
                  .ok());
  EXPECT_EQ(Run("SELECT v FROM void WHERE v = 1").num_rows(), 0u);
  EXPECT_EQ(Run("SELECT v, toy_id FROM void, toys WHERE v = toy_id")
                .num_rows(),
            0u);
}

}  // namespace
}  // namespace dssp::engine
