// Batched invalidation fan-out tests: batch frame encode/decode, the
// batched-vs-unbatched differential (identical invalidation sets, counts,
// and per-member FIFO order), partial-ack semantics, batch-envelope dedup,
// and the router treating members with dropped notices as backlog-unsafe
// for k-staleness reads.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/exposure.h"
#include "catalog/schema.h"
#include "cluster/bus.h"
#include "cluster/router.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/node.h"
#include "dssp/protocol.h"

namespace dssp::cluster {
namespace {

using service::Encode;
using service::InvalidateBatchRequest;
using service::InvalidateBatchResponse;
using service::InvalidateRequest;
using service::MessageType;
using service::Seal;
using service::Unseal;
using sql::Value;

InvalidateRequest MakeInvalidate(const std::string& app_id, uint64_t nonce) {
  InvalidateRequest request;
  request.app_id = app_id;
  request.level = 0;  // Blind: clears the whole app cache.
  request.nonce = nonce;
  return request;
}

// ----- Protocol framing. -----

TEST(BatchProtocolTest, RequestRoundTripsThroughTheWire) {
  InvalidateBatchRequest batch;
  batch.nonce = 77;
  batch.notices.push_back(Encode(MakeInvalidate("app", 1)));
  batch.notices.push_back(Encode(MakeInvalidate("other", 2)));

  auto decoded = service::DecodeInvalidateBatchRequest(Encode(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->nonce, 77u);
  ASSERT_EQ(decoded->notices.size(), 2u);
  EXPECT_EQ(decoded->notices[0], batch.notices[0]);
  EXPECT_EQ(decoded->notices[1], batch.notices[1]);
}

TEST(BatchProtocolTest, ResponseRoundTripsAcceptedAndRefusedAcks) {
  InvalidateBatchResponse response;
  response.acks.push_back({/*accepted=*/true, /*entries_invalidated=*/5,
                           StatusCode::kOk});
  response.acks.push_back({/*accepted=*/false, /*entries_invalidated=*/0,
                           StatusCode::kInvalidArgument});

  auto decoded = service::DecodeInvalidateBatchResponse(Encode(response));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->acks.size(), 2u);
  EXPECT_TRUE(decoded->acks[0].accepted);
  EXPECT_EQ(decoded->acks[0].entries_invalidated, 5u);
  EXPECT_FALSE(decoded->acks[1].accepted);
  EXPECT_EQ(decoded->acks[1].code, StatusCode::kInvalidArgument);
}

TEST(BatchProtocolTest, MalformedFramesAreRejectedNotCrashed) {
  InvalidateBatchRequest batch;
  batch.nonce = 1;
  batch.notices.push_back(Encode(MakeInvalidate("app", 1)));
  const std::string good = Encode(batch);

  // Zero batch nonce.
  InvalidateBatchRequest zero = batch;
  zero.nonce = 0;
  EXPECT_FALSE(service::DecodeInvalidateBatchRequest(Encode(zero)).ok());
  // Truncations at every prefix length.
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(
        service::DecodeInvalidateBatchRequest(good.substr(0, len)).ok())
        << "prefix " << len;
  }
  // Trailing garbage.
  EXPECT_FALSE(service::DecodeInvalidateBatchRequest(good + "x").ok());
  // Allocation bomb: a count far beyond the bytes that could back it.
  std::string bomb(1, static_cast<char>(MessageType::kInvalidateBatchRequest));
  for (int i = 0; i < 8; ++i) bomb.push_back(1);         // nonce
  for (int i = 0; i < 8; ++i) bomb.push_back('\xff');    // count = 2^64-ish
  EXPECT_FALSE(service::DecodeInvalidateBatchRequest(bomb).ok());

  // Response: a refusal carrying kOk is garbage.
  InvalidateBatchResponse bad;
  bad.acks.push_back({false, 0, StatusCode::kOk});
  EXPECT_FALSE(service::DecodeInvalidateBatchResponse(Encode(bad)).ok());
}

// ----- NodeChannel batch handling. -----

TEST(BatchChannelTest, PartialAckRefusesOneNoticeWithoutPoisoningTheBatch) {
  service::DsspNode node;
  NodeChannel channel(node);

  InvalidateBatchRequest batch;
  batch.nonce = 50;
  batch.notices.push_back(Encode(MakeInvalidate("app", 1)));
  // Level kView is never legal for an update notice: deterministic refusal.
  InvalidateRequest bad = MakeInvalidate("app", 2);
  bad.level = static_cast<uint8_t>(analysis::ExposureLevel::kView);
  batch.notices.push_back(Encode(bad));
  batch.notices.push_back(Encode(MakeInvalidate("app", 3)));

  auto outcome = channel.RoundTrip(Seal(Encode(batch)));
  ASSERT_TRUE(outcome.delivered);
  auto inner = Unseal(outcome.response);
  ASSERT_TRUE(inner.ok());
  auto acks = service::DecodeInvalidateBatchResponse(*inner);
  ASSERT_TRUE(acks.ok());
  ASSERT_EQ(acks->acks.size(), 3u);
  EXPECT_TRUE(acks->acks[0].accepted);
  EXPECT_FALSE(acks->acks[1].accepted);
  EXPECT_EQ(acks->acks[1].code, StatusCode::kInvalidArgument);
  EXPECT_TRUE(acks->acks[2].accepted);
  EXPECT_EQ(channel.notices_applied(), 2u);
  EXPECT_EQ(channel.batches_received(), 1u);
}

TEST(BatchChannelTest, RetriedBatchReplaysStoredAcksVerbatim) {
  service::DsspNode node;
  NodeChannel channel(node);
  InvalidateBatchRequest batch;
  batch.nonce = 9;
  batch.notices.push_back(Encode(MakeInvalidate("app", 1)));
  batch.notices.push_back(Encode(MakeInvalidate("app", 2)));
  const std::string frame = Seal(Encode(batch));

  auto first = channel.RoundTrip(frame);
  auto second = channel.RoundTrip(frame);
  ASSERT_TRUE(first.delivered && second.delivered);
  EXPECT_EQ(first.response, second.response);
  EXPECT_EQ(channel.notices_applied(), 2u);  // Applied exactly once.
  EXPECT_EQ(channel.duplicates_suppressed(), 1u);
}

TEST(BatchChannelTest, NoticeSeenAsSingletonIsSuppressedInsideABatch) {
  service::DsspNode node;
  NodeChannel channel(node);
  const std::string notice = Encode(MakeInvalidate("app", 4));
  ASSERT_TRUE(channel.RoundTrip(Seal(notice)).delivered);

  InvalidateBatchRequest batch;
  batch.nonce = 99;
  batch.notices.push_back(notice);  // Same per-notice nonce, new envelope.
  batch.notices.push_back(Encode(MakeInvalidate("app", 5)));
  ASSERT_TRUE(channel.RoundTrip(Seal(Encode(batch))).delivered);

  // The per-notice nonce map stayed authoritative across the boundary.
  EXPECT_EQ(channel.notices_applied(), 2u);
  EXPECT_EQ(channel.duplicates_suppressed(), 1u);
}

// ----- Bus batching: differential vs the unbatched wire. -----

// Channel decorator that records every inner notice nonce crossing the
// wire, unwrapping batch envelopes, so tests can assert per-member FIFO
// delivery order independent of framing.
class RecordingChannel : public service::Channel {
 public:
  explicit RecordingChannel(service::Channel& inner) : inner_(inner) {}

  service::ChannelOutcome RoundTrip(std::string_view frame) override {
    auto unsealed = Unseal(frame);
    if (unsealed.ok()) {
      ++frames_;
      if (service::PeekType(*unsealed) ==
          MessageType::kInvalidateBatchRequest) {
        auto batch = service::DecodeInvalidateBatchRequest(*unsealed);
        if (batch.ok()) {
          ++batch_frames_;
          for (const std::string& notice : batch->notices) {
            auto request = service::DecodeInvalidateRequest(notice);
            if (request.ok()) nonces_.push_back(request->nonce);
          }
        }
      } else if (service::PeekType(*unsealed) ==
                 MessageType::kInvalidateRequest) {
        auto request = service::DecodeInvalidateRequest(*unsealed);
        if (request.ok()) nonces_.push_back(request->nonce);
      }
    }
    return inner_.RoundTrip(frame);
  }

  const std::vector<uint64_t>& nonces() const { return nonces_; }
  uint64_t frames() const { return frames_; }
  uint64_t batch_frames() const { return batch_frames_; }

 private:
  service::Channel& inner_;
  std::vector<uint64_t> nonces_;
  uint64_t frames_ = 0;
  uint64_t batch_frames_ = 0;
};

TEST(BusBatchTest, BatchedDrainMatchesUnbatchedSetCountsAndFifoOrder) {
  constexpr int kNotices = 10;
  struct Side {
    service::DsspNode node;
    std::unique_ptr<NodeChannel> endpoint;
    std::unique_ptr<RecordingChannel> wire;
    std::unique_ptr<InvalidationBus> bus;
  };
  Side unbatched, batched;
  for (Side* side : {&unbatched, &batched}) {
    side->endpoint = std::make_unique<NodeChannel>(side->node);
    side->wire = std::make_unique<RecordingChannel>(*side->endpoint);
    BusOptions options;
    options.max_batch = side == &batched ? 4 : 1;
    side->bus = std::make_unique<InvalidationBus>(options);
    side->bus->AddMember(0, side->wire.get());
    // Queue everything, then drain once: the batched side coalesces.
    side->bus->SetDeferred(0, true);
    service::UpdateNotice notice;  // Blind.
    for (int i = 0; i < kNotices; ++i) side->bus->Publish("app", notice);
    side->bus->SetDeferred(0, false);
    auto replayed = side->bus->Flush(0);
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(*replayed, static_cast<uint64_t>(kNotices));
  }

  // Identical invalidation set and per-member FIFO order (nonces 1..10, in
  // publish order, both framings).
  ASSERT_EQ(unbatched.wire->nonces().size(), static_cast<size_t>(kNotices));
  EXPECT_EQ(unbatched.wire->nonces(), batched.wire->nonces());
  EXPECT_EQ(unbatched.node.stats("app").updates_observed,
            batched.node.stats("app").updates_observed);
  EXPECT_EQ(batched.endpoint->notices_applied(),
            unbatched.endpoint->notices_applied());

  // Identical notice counts; only the wire framing differs.
  const BusStats u = unbatched.bus->stats();
  const BusStats b = batched.bus->stats();
  EXPECT_EQ(u.delivered_notices, b.delivered_notices);
  EXPECT_EQ(u.dropped_frames, 0u);
  EXPECT_EQ(b.dropped_frames, 0u);
  EXPECT_EQ(u.batches_sent, 0u);
  EXPECT_EQ(b.batches_sent, 3u);  // 4 + 4 + 2.
  EXPECT_EQ(b.batched_notices, static_cast<uint64_t>(kNotices));
  EXPECT_EQ(unbatched.wire->frames(), static_cast<uint64_t>(kNotices));
  EXPECT_EQ(batched.wire->frames(), 3u);
  EXPECT_EQ(batched.wire->batch_frames(), 3u);
}

TEST(BusBatchTest, RefusedNoticeInsideABatchIsDroppedNotRequeued) {
  service::DsspNode node;
  NodeChannel endpoint(node);
  BusOptions options;
  options.max_batch = 8;
  InvalidationBus bus(options);
  bus.AddMember(0, &endpoint);
  bus.SetDeferred(0, true);

  service::UpdateNotice good;  // Blind.
  service::UpdateNotice poison;
  poison.level = analysis::ExposureLevel::kView;  // Never legal: refused.
  bus.Publish("app", good);
  bus.Publish("app", poison);
  bus.Publish("app", good);
  bus.SetDeferred(0, false);

  auto replayed = bus.Flush(0);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 2u);  // The two good notices.
  EXPECT_EQ(bus.Pending(0), 0u);  // The refusal did not clog the queue.
  EXPECT_EQ(bus.Dropped(0), 1u);

  const BusStats stats = bus.stats();
  EXPECT_EQ(stats.delivered_notices, 2u);
  EXPECT_EQ(stats.dropped_frames, 1u);
  EXPECT_EQ(stats.unreachable_failures, 0u);
}

// ----- Router: dropped notices make a member backlog-unsafe. -----

std::unique_ptr<service::ScalableApp> MakeKvApp(const std::string& id,
                                                service::CacheBackend* dssp) {
  auto app = std::make_unique<service::ScalableApp>(
      id, dssp, crypto::KeyRing::FromPassphrase("batch-secret"));
  engine::Database& db = app->home().database();
  EXPECT_TRUE(db.CreateTable(catalog::TableSchema(
                                 "kv",
                                 {{"id", catalog::ColumnType::kInt64},
                                  {"val", catalog::ColumnType::kInt64}},
                                 {"id"}))
                  .ok());
  for (int64_t i = 1; i <= 50; ++i) {
    EXPECT_TRUE(db.InsertRow("kv", {Value(i), Value(i * 7 % 31)}).ok());
  }
  EXPECT_TRUE(
      app->home().AddQueryTemplate("SELECT val FROM kv WHERE id = ?").ok());
  EXPECT_TRUE(app->home()
                  .AddUpdateTemplate("UPDATE kv SET val = ? WHERE id = ?")
                  .ok());
  EXPECT_TRUE(app->Finalize().ok());
  return app;
}

TEST(RouterBatchTest, DroppedFramesMakeMembersBacklogUnsafeForStaleReads) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.replication = 2;
  ClusterRouter router(options);
  auto app = MakeKvApp("kv", &router);
  router.SetStaleRetention("kv", 10);

  // Plant an entry on every member and invalidate it once (delivered, not
  // dropped): retained one update behind, servable by a stale read.
  for (int node = 0; node < 2; ++node) {
    service::CacheEntry entry;
    entry.key = "k";
    entry.blob = "blob";
    router.node(node).Store("kv", std::move(entry));
  }
  service::UpdateNotice blind;
  router.OnUpdate("kv", blind);
  ASSERT_TRUE(router.LookupStale("kv", "k", 5).has_value());

  // A poisoned notice every member refuses: dropped everywhere, silently
  // behind by one update with nothing queued to replay.
  service::UpdateNotice poison;
  poison.level = analysis::ExposureLevel::kView;
  router.OnUpdate("kv", poison);
  for (int node = 0; node < 2; ++node) {
    EXPECT_EQ(router.bus().Pending(node), 0u) << "node " << node;
    EXPECT_EQ(router.bus().Dropped(node), 1u) << "node " << node;
    EXPECT_EQ(router.node_stats(node).bus_dropped, 1u) << "node " << node;
  }

  // Stale reads now refuse every member: no k bound derived from Pending()
  // is sound once notices have vanished.
  const uint64_t skips_before = router.route_stats().lagging_skips;
  EXPECT_FALSE(router.LookupStale("kv", "k", 5).has_value());
  EXPECT_GT(router.route_stats().lagging_skips, skips_before);

  // Fresh lookups are unaffected — refusals are symmetric across members
  // (every member validates against the same app registration), so live
  // entries keep serving.
  for (int node = 0; node < 2; ++node) {
    service::CacheEntry entry;
    entry.key = "live";
    entry.blob = "blob";
    router.node(node).Store("kv", std::move(entry));
  }
  EXPECT_TRUE(router.Lookup("kv", "live").has_value());

  const BusStats stats = router.bus().stats();
  EXPECT_EQ(stats.dropped_frames, 2u);  // One per member.
  EXPECT_EQ(stats.unreachable_failures, 0u);
}

}  // namespace
}  // namespace dssp::cluster
