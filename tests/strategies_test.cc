#include <gtest/gtest.h>

#include <algorithm>

#include "engine/database.h"
#include "invalidation/strategies.h"
#include "workloads/toystore.h"

namespace dssp::invalidation {
namespace {

using analysis::ExposureLevel;
using sql::Value;
using templates::QueryTemplate;
using templates::UpdateTemplate;

// Shared fixture: the Table 3 toystore plus helpers that build fully
// populated views (as if everything were exposed) and let each test gate
// what a strategy may see.
class StrategiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bundle = workloads::MakeToystore();
    ASSERT_TRUE(bundle.ok());
    db_ = std::move(bundle->db);
    templates_ = std::move(bundle->templates);
  }

  const catalog::Catalog& catalog() const { return db_->catalog(); }

  // Builds an UpdateView at `level` for template `id` with `params`.
  UpdateView MakeUpdate(const std::string& id, std::vector<Value> params,
                        ExposureLevel level = ExposureLevel::kStmt) {
    const UpdateTemplate* tmpl = templates_.FindUpdate(id);
    EXPECT_NE(tmpl, nullptr);
    update_stmt_ = tmpl->Bind(params);
    UpdateView view;
    view.level = level;
    if (level != ExposureLevel::kBlind) view.tmpl = tmpl;
    if (level == ExposureLevel::kStmt) view.statement = &update_stmt_;
    return view;
  }

  // Builds a CachedQueryView at `level`, executing the query to obtain the
  // real result when the level exposes it.
  CachedQueryView MakeQuery(const std::string& id, std::vector<Value> params,
                            ExposureLevel level = ExposureLevel::kView) {
    const QueryTemplate* tmpl = templates_.FindQuery(id);
    EXPECT_NE(tmpl, nullptr);
    query_stmt_ = tmpl->Bind(params);
    auto result = db_->ExecuteQuery(query_stmt_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    query_result_ = std::move(result).value();
    CachedQueryView view;
    view.level = level;
    if (level != ExposureLevel::kBlind) view.tmpl = tmpl;
    if (level == ExposureLevel::kStmt || level == ExposureLevel::kView) {
      view.statement = &query_stmt_;
    }
    if (level == ExposureLevel::kView) view.result = &query_result_;
    return view;
  }

  std::unique_ptr<engine::Database> db_;
  templates::TemplateSet templates_;
  sql::Statement update_stmt_;
  sql::Statement query_stmt_;
  engine::QueryResult query_result_;
};

// ----- Table 2: invalidations under the four information regimes. -----
// Update U1 with parameter 5 against cached Q1/Q2/Q3 instances.

TEST_F(StrategiesTest, Table2BlindRowInvalidatesEverything) {
  BlindStrategy blind;
  const UpdateView u = MakeUpdate("U1", {Value(5)}, ExposureLevel::kBlind);
  EXPECT_EQ(blind.Decide(u, MakeQuery("Q1", {Value("toy3")},
                                      ExposureLevel::kBlind)),
            Decision::kInvalidate);
  EXPECT_EQ(blind.Decide(u, MakeQuery("Q2", {Value(5)},
                                      ExposureLevel::kBlind)),
            Decision::kInvalidate);
  EXPECT_EQ(blind.Decide(u, MakeQuery("Q3", {Value(10001)},
                                      ExposureLevel::kBlind)),
            Decision::kInvalidate);
}

TEST_F(StrategiesTest, Table2TemplateRowSparesQ3) {
  TemplateInspectionStrategy tis(catalog());
  const UpdateView u = MakeUpdate("U1", {Value(5)}, ExposureLevel::kTemplate);
  // All of Q1, all of Q2 invalidated; Q3 untouched (ignorable).
  EXPECT_EQ(tis.Decide(u, MakeQuery("Q1", {Value("toy3")},
                                    ExposureLevel::kTemplate)),
            Decision::kInvalidate);
  EXPECT_EQ(tis.Decide(u, MakeQuery("Q2", {Value(7)},
                                    ExposureLevel::kTemplate)),
            Decision::kInvalidate);
  EXPECT_EQ(tis.Decide(u, MakeQuery("Q3", {Value(10001)},
                                    ExposureLevel::kTemplate)),
            Decision::kDoNotInvalidate);
}

TEST_F(StrategiesTest, Table2StatementRowSparesOtherKeys) {
  StatementInspectionStrategy sis(catalog());
  const UpdateView u = MakeUpdate("U1", {Value(5)});
  // Q2 invalidated only if toy_id = 5.
  EXPECT_EQ(sis.Decide(u, MakeQuery("Q2", {Value(5)}, ExposureLevel::kStmt)),
            Decision::kInvalidate);
  EXPECT_EQ(sis.Decide(u, MakeQuery("Q2", {Value(7)}, ExposureLevel::kStmt)),
            Decision::kDoNotInvalidate);
  // All of Q1 still invalidated (name unknown for deleted toy).
  EXPECT_EQ(sis.Decide(u, MakeQuery("Q1", {Value("toy3")},
                                    ExposureLevel::kStmt)),
            Decision::kInvalidate);
}

TEST_F(StrategiesTest, Table2ViewRowChecksResultContent) {
  ViewInspectionStrategy vis(catalog());
  const UpdateView u = MakeUpdate("U1", {Value(5)});
  // Q1('toy5') preserves toy_id: its result contains toy 5 -> invalidate.
  EXPECT_EQ(vis.Decide(u, MakeQuery("Q1", {Value("toy5")})),
            Decision::kInvalidate);
  // Q1('toy3') yields toy 3 only -> the deletion of toy 5 cannot matter.
  EXPECT_EQ(vis.Decide(u, MakeQuery("Q1", {Value("toy3")})),
            Decision::kDoNotInvalidate);
  // Q2(5): statement-level match -> invalidate.
  EXPECT_EQ(vis.Decide(u, MakeQuery("Q2", {Value(5)})),
            Decision::kInvalidate);
}

// ----- Strategy hierarchy (Figure 4): more information never invalidates
// more. -----

TEST_F(StrategiesTest, HierarchyIsMonotone) {
  BlindStrategy blind;
  TemplateInspectionStrategy tis(catalog());
  StatementInspectionStrategy sis(catalog());
  ViewInspectionStrategy vis(catalog());

  const struct {
    const char* update;
    std::vector<Value> update_params;
    const char* query;
    std::vector<Value> query_params;
  } cases[] = {
      {"U1", {Value(5)}, "Q1", {Value("toy3")}},
      {"U1", {Value(5)}, "Q1", {Value("toy5")}},
      {"U1", {Value(5)}, "Q2", {Value(5)}},
      {"U1", {Value(5)}, "Q2", {Value(7)}},
      {"U1", {Value(5)}, "Q3", {Value(10001)}},
      {"U2", {Value(15), Value("n"), Value(10001)}, "Q3", {Value(10001)}},
      {"U2", {Value(15), Value("n"), Value(10002)}, "Q3", {Value(10001)}},
      {"U2", {Value(15), Value("n"), Value(10001)}, "Q2", {Value(5)}},
  };
  for (const auto& c : cases) {
    const UpdateView u = MakeUpdate(c.update, c.update_params);
    // Rebuild the query view fresh for each strategy level.
    const int blind_inv =
        blind.Decide(u, MakeQuery(c.query, c.query_params,
                                  ExposureLevel::kBlind)) ==
        Decision::kInvalidate;
    const int tis_inv =
        tis.Decide(u, MakeQuery(c.query, c.query_params,
                                ExposureLevel::kTemplate)) ==
        Decision::kInvalidate;
    const int sis_inv = sis.Decide(u, MakeQuery(c.query, c.query_params,
                                                ExposureLevel::kStmt)) ==
                        Decision::kInvalidate;
    const int vis_inv =
        vis.Decide(u, MakeQuery(c.query, c.query_params)) ==
        Decision::kInvalidate;
    EXPECT_GE(blind_inv, tis_inv) << c.update << "/" << c.query;
    EXPECT_GE(tis_inv, sis_inv) << c.update << "/" << c.query;
    EXPECT_GE(sis_inv, vis_inv) << c.update << "/" << c.query;
  }
}

// ----- VIS refinements. -----

TEST_F(StrategiesTest, VisModificationPaperExample) {
  // Section 4.4: SET qty=10 WHERE toy_id=5 vs SELECT toy_id WHERE qty>100.
  // Create the templates fresh (not part of the toystore set).
  auto mod = UpdateTemplate::Create(
      "Um", "UPDATE toys SET qty = ? WHERE toy_id = ?", catalog());
  ASSERT_TRUE(mod.ok());
  auto q = QueryTemplate::Create(
      "Qm", "SELECT toy_id FROM toys WHERE qty > ?", catalog());
  ASSERT_TRUE(q.ok());

  const sql::Statement update_stmt = mod->Bind({Value(10), Value(5)});
  const sql::Statement query_stmt = q->Bind({Value(100)});
  const auto result = db_->ExecuteQuery(query_stmt);
  ASSERT_TRUE(result.ok());
  // No toy has qty > 100 in the fixture (qty <= 100), and in particular
  // toy 5 is absent from the result.
  ASSERT_TRUE(std::none_of(result->rows().begin(), result->rows().end(),
                           [](const engine::Row& row) {
                             return row[0] == Value(5);
                           }));

  UpdateView uv;
  uv.level = ExposureLevel::kStmt;
  uv.tmpl = &*mod;
  uv.statement = &update_stmt;
  CachedQueryView qv;
  qv.level = ExposureLevel::kView;
  qv.tmpl = &*q;
  qv.statement = &query_stmt;
  qv.result = &*result;

  StatementInspectionStrategy sis(catalog());
  ViewInspectionStrategy vis(catalog());
  // MSIS must invalidate; MVIS must not (the paper's exact scenario).
  EXPECT_EQ(sis.Decide(uv, qv), Decision::kInvalidate);
  EXPECT_EQ(vis.Decide(uv, qv), Decision::kDoNotInvalidate);
}

TEST_F(StrategiesTest, VisModificationEntryForcesInvalidation) {
  auto mod = UpdateTemplate::Create(
      "Um", "UPDATE toys SET qty = ? WHERE toy_id = ?", catalog());
  ASSERT_TRUE(mod.ok());
  auto q = QueryTemplate::Create(
      "Qm", "SELECT toy_id FROM toys WHERE qty > ?", catalog());
  ASSERT_TRUE(q.ok());
  // New qty 500 > 100: the modified row enters the result.
  const sql::Statement update_stmt = mod->Bind({Value(500), Value(5)});
  const sql::Statement query_stmt = q->Bind({Value(100)});
  const auto result = db_->ExecuteQuery(query_stmt);
  ASSERT_TRUE(result.ok());

  UpdateView uv{ExposureLevel::kStmt, &*mod, &update_stmt};
  CachedQueryView qv{ExposureLevel::kView, &*q, &query_stmt, &*result};
  ViewInspectionStrategy vis(catalog());
  EXPECT_EQ(vis.Decide(uv, qv), Decision::kInvalidate);
}

TEST_F(StrategiesTest, VisFallsBackWhenPredicateAttrsNotPreserved) {
  // Q2 preserves only qty; a deletion keyed on toy_id cannot be checked
  // against the view, so VIS falls back to the statement decision.
  ViewInspectionStrategy vis(catalog());
  const UpdateView u = MakeUpdate("U1", {Value(5)});
  EXPECT_EQ(vis.Decide(u, MakeQuery("Q2", {Value(5)})),
            Decision::kInvalidate);
  EXPECT_EQ(vis.Decide(u, MakeQuery("Q2", {Value(7)})),
            Decision::kDoNotInvalidate);  // Statement-level independence.
}

// ----- Gated information: strategies never peek beyond the exposure. -----

TEST_F(StrategiesTest, StrategiesInvalidateWhenInformationHidden) {
  TemplateInspectionStrategy tis(catalog());
  StatementInspectionStrategy sis(catalog());
  // Blind update: even TIS must invalidate everything.
  const UpdateView blind_update =
      MakeUpdate("U1", {Value(5)}, ExposureLevel::kBlind);
  EXPECT_EQ(tis.Decide(blind_update, MakeQuery("Q3", {Value(10001)},
                                               ExposureLevel::kTemplate)),
            Decision::kInvalidate);
  // Blind query entry: must be invalidated by any update.
  const UpdateView u = MakeUpdate("U1", {Value(5)});
  EXPECT_EQ(sis.Decide(u, MakeQuery("Q3", {Value(10001)},
                                    ExposureLevel::kBlind)),
            Decision::kInvalidate);
  // Template-level update: SIS has no parameters, cannot prove independence
  // for same-template pairs.
  const UpdateView template_update =
      MakeUpdate("U1", {Value(5)}, ExposureLevel::kTemplate);
  EXPECT_EQ(sis.Decide(template_update,
                       MakeQuery("Q2", {Value(7)}, ExposureLevel::kStmt)),
            Decision::kInvalidate);
}

// ----- MixedStrategy dispatch (Figure 6 shaded cells). -----

TEST_F(StrategiesTest, MixedDispatchesByExposure) {
  MixedStrategy mixed(catalog());
  // (stmt, stmt) -> SIS: independent instance spared.
  EXPECT_EQ(mixed.Decide(MakeUpdate("U1", {Value(5)}),
                         MakeQuery("Q2", {Value(7)}, ExposureLevel::kStmt)),
            Decision::kDoNotInvalidate);
  // (stmt, template) -> TIS: same pair now invalidated.
  EXPECT_EQ(
      mixed.Decide(MakeUpdate("U1", {Value(5)}),
                   MakeQuery("Q2", {Value(7)}, ExposureLevel::kTemplate)),
      Decision::kInvalidate);
  // (blind, view) -> blind.
  EXPECT_EQ(mixed.Decide(MakeUpdate("U1", {Value(5)}, ExposureLevel::kBlind),
                         MakeQuery("Q3", {Value(10001)})),
            Decision::kInvalidate);
  // (stmt, view) -> VIS.
  EXPECT_EQ(mixed.Decide(MakeUpdate("U1", {Value(5)}),
                         MakeQuery("Q1", {Value("toy3")})),
            Decision::kDoNotInvalidate);
}

TEST_F(StrategiesTest, StrategyNames) {
  EXPECT_EQ(BlindStrategy().name(), "MBS");
  EXPECT_EQ(TemplateInspectionStrategy(catalog()).name(), "MTIS");
  EXPECT_EQ(StatementInspectionStrategy(catalog()).name(), "MSIS");
  EXPECT_EQ(ViewInspectionStrategy(catalog()).name(), "MVIS");
  EXPECT_EQ(MixedStrategy(catalog()).name(), "mixed");
}

}  // namespace
}  // namespace dssp::invalidation
