// Property test: the engine's optimized executor (hash indexes, hash
// joins, group prefilters) agrees with a brute-force reference evaluator
// (cross product + filter + sort) on randomized queries over randomized
// small databases.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "engine/eval.h"
#include "sql/parser.h"

namespace dssp::engine {
namespace {

using catalog::ColumnType;
using catalog::TableSchema;
using sql::CompareOp;
using sql::Value;

// ----- Brute-force reference for SPJ + ORDER BY + LIMIT (no aggregates).

struct RefTable {
  std::string name;
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

// Evaluates one comparison over a joined tuple using name-based lookup.
Value RefOperand(const sql::Operand& op,
                 const std::vector<const RefTable*>& tables,
                 const std::vector<std::string>& aliases,
                 const std::vector<size_t>& tuple) {
  if (sql::IsLiteral(op)) return std::get<Value>(op);
  const sql::ColumnRef& ref = std::get<sql::ColumnRef>(op);
  for (size_t s = 0; s < tables.size(); ++s) {
    if (!ref.table.empty() && ref.table != aliases[s]) continue;
    for (size_t c = 0; c < tables[s]->columns.size(); ++c) {
      if (tables[s]->columns[c] == ref.column) {
        return tables[s]->rows[tuple[s]][c];
      }
    }
    if (!ref.table.empty()) break;
  }
  ADD_FAILURE() << "reference failed to resolve " << ref.ToString();
  return Value::Null();
}

QueryResult ReferenceExecute(const sql::SelectStatement& stmt,
                             const std::vector<RefTable>& all_tables) {
  std::vector<const RefTable*> tables;
  std::vector<std::string> aliases;
  for (const sql::TableRef& ref : stmt.from) {
    for (const RefTable& t : all_tables) {
      if (t.name == ref.table) tables.push_back(&t);
    }
    aliases.push_back(ref.effective_name());
  }

  // Cross product.
  std::vector<std::vector<size_t>> tuples{{}};
  for (const RefTable* table : tables) {
    std::vector<std::vector<size_t>> next;
    for (const auto& tuple : tuples) {
      for (size_t r = 0; r < table->rows.size(); ++r) {
        auto extended = tuple;
        extended.push_back(r);
        next.push_back(std::move(extended));
      }
    }
    tuples = std::move(next);
  }

  // Filter.
  std::vector<std::vector<size_t>> kept;
  for (const auto& tuple : tuples) {
    bool ok = true;
    for (const sql::Comparison& cmp : stmt.where) {
      if (!CompareValues(RefOperand(cmp.lhs, tables, aliases, tuple), cmp.op,
                         RefOperand(cmp.rhs, tables, aliases, tuple))) {
        ok = false;
        break;
      }
    }
    if (ok) kept.push_back(tuple);
  }

  // Order by (stable).
  if (!stmt.order_by.empty()) {
    std::stable_sort(
        kept.begin(), kept.end(), [&](const auto& a, const auto& b) {
          for (const sql::OrderByItem& item : stmt.order_by) {
            const sql::Operand op = sql::Operand(item.column);
            const int c = RefOperand(op, tables, aliases, a)
                              .Compare(RefOperand(op, tables, aliases, b));
            if (c != 0) return item.descending ? c > 0 : c < 0;
          }
          return false;
        });
  }

  // Limit.
  if (stmt.limit.has_value()) {
    const size_t k = static_cast<size_t>(
        std::get<Value>(*stmt.limit).AsInt64());
    if (kept.size() > k) kept.resize(k);
  }

  // Project.
  std::vector<std::string> names;
  std::vector<Row> rows;
  for (const auto& tuple : kept) {
    Row row;
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star) {
        for (size_t s = 0; s < tables.size(); ++s) {
          for (size_t c = 0; c < tables[s]->columns.size(); ++c) {
            row.push_back(tables[s]->rows[tuple[s]][c]);
          }
        }
      } else {
        row.push_back(
            RefOperand(sql::Operand(item.column), tables, aliases, tuple));
      }
    }
    rows.push_back(std::move(row));
  }
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t s = 0; s < tables.size(); ++s) {
        for (const std::string& c : tables[s]->columns) {
          names.push_back(aliases[s] + "." + c);
        }
      }
    } else {
      names.push_back(item.column.ToString());
    }
  }
  return QueryResult(std::move(names), std::move(rows),
                     !stmt.order_by.empty());
}

// ----- Random database + query generation.

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, MatchesBruteForceReference) {
  Rng rng(GetParam());

  // Two small tables with ints (small domains to force duplicates/joins)
  // and a string column.
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("ta",
                                         {{"a1", ColumnType::kInt64},
                                          {"a2", ColumnType::kInt64},
                                          {"a3", ColumnType::kString}},
                                         /*primary_key=*/{}))
                  .ok());
  ASSERT_TRUE(db.CreateTable(TableSchema("tb",
                                         {{"b1", ColumnType::kInt64},
                                          {"b2", ColumnType::kInt64}},
                                         /*primary_key=*/{}))
                  .ok());
  std::vector<RefTable> ref = {
      {"ta", {"a1", "a2", "a3"}, {}},
      {"tb", {"b1", "b2"}, {}},
  };

  const auto small_int = [&] {
    return Value(static_cast<int64_t>(rng.NextBelow(6)));
  };
  const auto small_str = [&] {
    return Value(std::string(1, static_cast<char>('a' + rng.NextBelow(4))));
  };
  const size_t na = 2 + rng.NextBelow(15);
  for (size_t i = 0; i < na; ++i) {
    Row row{small_int(), small_int(), small_str()};
    ASSERT_TRUE(db.InsertRow("ta", row).ok());
    ref[0].rows.push_back(row);
  }
  const size_t nb = 2 + rng.NextBelow(10);
  for (size_t i = 0; i < nb; ++i) {
    Row row{small_int(), small_int()};
    ASSERT_TRUE(db.InsertRow("tb", row).ok());
    ref[1].rows.push_back(row);
  }

  const char* ops[] = {"=", "<", "<=", ">", ">="};
  const char* a_cols[] = {"a1", "a2"};
  const char* b_cols[] = {"b1", "b2"};

  for (int trial = 0; trial < 40; ++trial) {
    // Build a random query as SQL text.
    const bool join = rng.NextBool(0.5);
    std::string sql = "SELECT ";
    const int proj_kind = static_cast<int>(rng.NextBelow(3));
    if (proj_kind == 0) {
      sql += "*";
    } else if (proj_kind == 1) {
      sql += "a1, a3";
    } else {
      sql += join ? "a2, b1" : "a2, a1";
    }
    sql += join ? " FROM ta, tb" : " FROM ta";

    std::vector<std::string> conjuncts;
    const size_t n_conjuncts = rng.NextBelow(3);
    for (size_t i = 0; i < n_conjuncts; ++i) {
      const char* op = ops[rng.NextBelow(5)];
      if (rng.NextBool(0.3)) {
        conjuncts.push_back(std::string("a3 ") + op + " '" +
                            std::string(1, 'a' + rng.NextBelow(4)) + "'");
      } else {
        conjuncts.push_back(std::string(a_cols[rng.NextBelow(2)]) + " " +
                            op + " " +
                            std::to_string(rng.NextBelow(6)));
      }
    }
    if (join) {
      // One join conjunct (equality or inequality).
      conjuncts.push_back(std::string(a_cols[rng.NextBelow(2)]) + " " +
                          ops[rng.NextBelow(5)] + " " +
                          b_cols[rng.NextBelow(2)]);
    }
    if (!conjuncts.empty()) {
      sql += " WHERE ";
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i != 0) sql += " AND ";
        sql += conjuncts[i];
      }
    }
    const bool ordered = rng.NextBool(0.5);
    if (ordered) {
      // Order by EVERY column (random directions) so the result sequence is
      // deterministic up to fully-duplicate rows: tie-breaking differences
      // between the two executors cannot show through.
      sql += " ORDER BY ";
      std::vector<std::string> keys = {"a1", "a2", "a3"};
      if (join) {
        keys.push_back("b1");
        keys.push_back("b2");
      }
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i != 0) sql += ", ";
        sql += keys[i];
        if (rng.NextBool(0.5)) sql += " DESC";
      }
      // With a total order, top-k is deterministic too.
      if (rng.NextBool(0.3)) {
        sql += " LIMIT " + std::to_string(1 + rng.NextBelow(25));
      }
    }

    SCOPED_TRACE(sql);
    const sql::Statement stmt = sql::ParseOrDie(sql);
    auto engine_result = db.ExecuteQuery(stmt);
    ASSERT_TRUE(engine_result.ok()) << engine_result.status().ToString();
    const QueryResult expected = ReferenceExecute(stmt.select(), ref);

    EXPECT_TRUE(engine_result->SameResult(expected))
        << "engine:\n"
        << engine_result->ToDebugString(50) << "\nreference:\n"
        << expected.ToDebugString(50);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace dssp::engine
