#include <gtest/gtest.h>

#include "dssp/home_server.h"
#include "workloads/toystore.h"

namespace dssp::service {
namespace {

using sql::Value;

class HomeServerTest : public ::testing::Test {
 protected:
  HomeServerTest()
      : home_("toystore", crypto::KeyRing::FromPassphrase("home-secret")) {}

  void SetUp() override {
    auto bundle = workloads::MakeToystore();
    ASSERT_TRUE(bundle.ok());
    // Rebuild the toystore schema/data inside the home server's database
    // (FK-dependency order: referenced tables first).
    for (const std::string table : {"toys", "customers", "credit_card"}) {
      const catalog::TableSchema& schema =
          bundle->db->catalog().GetTable(table);
      ASSERT_TRUE(home_.database().CreateTable(schema).ok());
    }
    for (const std::string table : {"toys", "customers", "credit_card"}) {
      const engine::Table& src = bundle->db->GetTable(table);
      for (size_t slot : src.AllSlots()) {
        ASSERT_TRUE(home_.database().InsertRow(table, src.RowAt(slot)).ok());
      }
    }
    ASSERT_TRUE(home_.AddQueryTemplate(
                        "SELECT qty FROM toys WHERE toy_id = ?")
                    .ok());
    ASSERT_TRUE(
        home_.AddUpdateTemplate("DELETE FROM toys WHERE toy_id = ?").ok());
  }

  HomeServer home_;
};

TEST_F(HomeServerTest, QueryOverEncryptedWire) {
  const std::string enc = home_.statement_cipher().Encrypt(
      "SELECT qty FROM toys WHERE toy_id = 5");
  auto blob = home_.HandleQuery(enc, /*plaintext_result=*/true);
  ASSERT_TRUE(blob.ok());
  auto result = engine::QueryResult::Deserialize(*blob);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->rows()[0][0], Value(36));
  EXPECT_EQ(home_.queries_executed(), 1u);
}

TEST_F(HomeServerTest, EncryptedResultRoundTrip) {
  const std::string enc = home_.statement_cipher().Encrypt(
      "SELECT qty FROM toys WHERE toy_id = 5");
  auto blob = home_.HandleQuery(enc, /*plaintext_result=*/false);
  ASSERT_TRUE(blob.ok());
  // Ciphertext is not a valid serialized result...
  EXPECT_FALSE(engine::QueryResult::Deserialize(*blob).ok());
  // ...until decrypted with the application's result cipher.
  auto result = engine::QueryResult::Deserialize(
      home_.result_cipher().Decrypt(*blob));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST_F(HomeServerTest, GarbageCiphertextIsRejected) {
  auto blob = home_.HandleQuery("not encrypted with the right key", true);
  EXPECT_FALSE(blob.ok());
  EXPECT_EQ(home_.queries_executed(), 0u);
}

TEST_F(HomeServerTest, WrongKeyCiphertextIsRejected) {
  const crypto::KeyRing other = crypto::KeyRing::FromPassphrase("imposter");
  const std::string enc = other.CipherFor("statement").Encrypt(
      "SELECT qty FROM toys WHERE toy_id = 5");
  EXPECT_FALSE(home_.HandleQuery(enc, true).ok());
}

TEST_F(HomeServerTest, UpdateOverEncryptedWire) {
  const std::string enc = home_.statement_cipher().Encrypt(
      "DELETE FROM toys WHERE toy_id = 5");
  auto effect = home_.HandleUpdate(enc);
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 1u);
  EXPECT_EQ(home_.updates_applied(), 1u);
  // Constraint violations propagate over the wire too.
  const std::string bad = home_.statement_cipher().Encrypt(
      "INSERT INTO credit_card (cid, number, zip_code) "
      "VALUES (999, 'n', 1)");
  auto violation = home_.HandleUpdate(bad);
  ASSERT_FALSE(violation.ok());
  EXPECT_EQ(violation.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(HomeServerTest, QueryEndpointRejectsUpdates) {
  const std::string enc = home_.statement_cipher().Encrypt(
      "DELETE FROM toys WHERE toy_id = 5");
  EXPECT_FALSE(home_.HandleQuery(enc, true).ok());
  const std::string enc_q = home_.statement_cipher().Encrypt(
      "SELECT qty FROM toys WHERE toy_id = 5");
  EXPECT_FALSE(home_.HandleUpdate(enc_q).ok());
}

TEST_F(HomeServerTest, TemplateRegistrationValidates) {
  EXPECT_FALSE(home_.AddQueryTemplate("SELECT x FROM ghost WHERE y = ?")
                   .ok());
  EXPECT_FALSE(home_.AddUpdateTemplate("DELETE FROM ghost WHERE y = ?")
                   .ok());
  EXPECT_EQ(home_.templates().num_queries(), 1u);
  EXPECT_EQ(home_.templates().num_updates(), 1u);
}

}  // namespace
}  // namespace dssp::service
