// Deeper coverage of the aggregation path: typing, NULL handling, grouping
// on multiple columns, interaction with ORDER BY / LIMIT, and rejection of
// shapes outside the supported language.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace dssp::engine {
namespace {

using catalog::ColumnType;
using catalog::TableSchema;
using sql::Value;

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("sales",
                                            {{"region", ColumnType::kString},
                                             {"product", ColumnType::kString},
                                             {"units", ColumnType::kInt64},
                                             {"price", ColumnType::kDouble}},
                                            /*primary_key=*/{}))
                    .ok());
    Insert({Value("east"), Value("widget"), Value(10), Value(2.5)});
    Insert({Value("east"), Value("widget"), Value(5), Value(2.0)});
    Insert({Value("east"), Value("gadget"), Value(1), Value(10.0)});
    Insert({Value("west"), Value("widget"), Value(7), Value(3.0)});
    Insert({Value("west"), Value("gadget"), Value::Null(), Value::Null()});
  }

  void Insert(Row row) {
    ASSERT_TRUE(db_.InsertRow("sales", std::move(row)).ok());
  }

  QueryResult Run(const std::string& sql) {
    auto result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult();
  }

  Database db_;
};

TEST_F(AggregateTest, SumTyping) {
  // SUM over ints stays integral; SUM over doubles is double.
  const QueryResult ints =
      Run("SELECT SUM(units) FROM sales WHERE region = 'east'");
  EXPECT_EQ(ints.rows()[0][0].type(), sql::ValueType::kInt64);
  EXPECT_EQ(ints.rows()[0][0], Value(16));
  const QueryResult doubles =
      Run("SELECT SUM(price) FROM sales WHERE region = 'east'");
  EXPECT_EQ(doubles.rows()[0][0].type(), sql::ValueType::kDouble);
  EXPECT_DOUBLE_EQ(doubles.rows()[0][0].AsDouble(), 14.5);
}

TEST_F(AggregateTest, AvgIsAlwaysDouble) {
  const QueryResult r =
      Run("SELECT AVG(units) FROM sales WHERE region = 'east'");
  EXPECT_EQ(r.rows()[0][0].type(), sql::ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r.rows()[0][0].AsDouble(), 16.0 / 3.0);
}

TEST_F(AggregateTest, MinMaxOnStrings) {
  const QueryResult r = Run(
      "SELECT MIN(product), MAX(product) FROM sales WHERE units >= 1");
  EXPECT_EQ(r.rows()[0][0], Value("gadget"));
  EXPECT_EQ(r.rows()[0][1], Value("widget"));
}

TEST_F(AggregateTest, CountColumnSkipsNullsCountStarDoesNot) {
  const QueryResult r = Run(
      "SELECT COUNT(*), COUNT(units), COUNT(price) FROM sales "
      "WHERE region = 'west'");
  EXPECT_EQ(r.rows()[0][0], Value(2));
  EXPECT_EQ(r.rows()[0][1], Value(1));
  EXPECT_EQ(r.rows()[0][2], Value(1));
}

TEST_F(AggregateTest, NullOnlyGroupAggregates) {
  const QueryResult r = Run(
      "SELECT SUM(units), AVG(units), MIN(units) FROM sales "
      "WHERE region = 'west' AND product = 'gadget'");
  EXPECT_TRUE(r.rows()[0][0].is_null());
  EXPECT_TRUE(r.rows()[0][1].is_null());
  EXPECT_TRUE(r.rows()[0][2].is_null());
}

TEST_F(AggregateTest, GroupByTwoColumns) {
  const QueryResult r = Run(
      "SELECT region, product, SUM(units) FROM sales WHERE units >= 0 "
      "GROUP BY region, product ORDER BY region, product");
  // The NULL-units west/gadget row is filtered by units >= 0 (NULL
  // comparisons are false), so only three groups remain.
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.rows()[0][0], Value("east"));
  EXPECT_EQ(r.rows()[0][1], Value("gadget"));
  EXPECT_EQ(r.rows()[1][2], Value(15));  // east/widget.
  EXPECT_EQ(r.rows()[2][0], Value("west"));
  EXPECT_EQ(r.rows()[2][1], Value("widget"));
  EXPECT_EQ(r.rows()[2][2], Value(7));
}

TEST_F(AggregateTest, GroupByWithLimitAfterOrdering) {
  const QueryResult r = Run(
      "SELECT product, COUNT(*) FROM sales WHERE price >= 0.0 "
      "GROUP BY product ORDER BY product LIMIT 1");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.rows()[0][0], Value("gadget"));
}

TEST_F(AggregateTest, DuplicateAggregatesInOneQuery) {
  const QueryResult r = Run(
      "SELECT MIN(units), MAX(units), MIN(units) FROM sales "
      "WHERE region = 'east'");
  EXPECT_EQ(r.rows()[0][0], Value(1));
  EXPECT_EQ(r.rows()[0][1], Value(10));
  EXPECT_EQ(r.rows()[0][2], Value(1));
}

TEST_F(AggregateTest, OrderByAggregateValueIsRejected) {
  // ORDER BY on grouped output must use projected GROUP BY columns.
  EXPECT_FALSE(db_.Query("SELECT product, SUM(units) FROM sales "
                         "WHERE units >= 0 GROUP BY product ORDER BY units")
                   .ok());
}

TEST_F(AggregateTest, OrderByUnprojectedGroupColumnIsRejected) {
  EXPECT_FALSE(db_.Query("SELECT SUM(units) FROM sales WHERE units >= 0 "
                         "GROUP BY product ORDER BY product")
                   .ok());
}

TEST_F(AggregateTest, StarMixedWithAggregateIsRejected) {
  EXPECT_FALSE(
      db_.Query("SELECT *, COUNT(*) FROM sales WHERE units >= 0").ok());
}

TEST_F(AggregateTest, AggregateOverJoin) {
  ASSERT_TRUE(db_.CreateTable(TableSchema("regions",
                                          {{"name", ColumnType::kString},
                                           {"tier", ColumnType::kInt64}},
                                          /*primary_key=*/{"name"}))
                  .ok());
  ASSERT_TRUE(db_.InsertRow("regions", {Value("east"), Value(1)}).ok());
  ASSERT_TRUE(db_.InsertRow("regions", {Value("west"), Value(2)}).ok());
  const QueryResult r = Run(
      "SELECT tier, SUM(units) FROM sales, regions "
      "WHERE region = name GROUP BY tier ORDER BY tier");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.rows()[0][1], Value(16));  // Tier 1 = east.
  EXPECT_EQ(r.rows()[1][1], Value(7));   // Tier 2 = west (NULL skipped).
}

}  // namespace
}  // namespace dssp::engine
