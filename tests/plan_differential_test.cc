// Differential verification of the ahead-of-time invalidation-plan compiler
// (analysis/plan.h) against the legacy per-call derivation:
//
//  1. On every (update, query) template pair of all four paper workloads,
//     compiled decisions must be bit-identical to the legacy strategy
//     decisions for randomized parameter bindings (>= 100k bound statement
//     pairs together with the random-template part).
//  2. On randomly generated templates over a synthetic PK/FK schema, same.
//  3. Against the brute-force database oracle: whenever the compiled path
//     answers "do not invalidate", actually applying the update must leave
//     the query result unchanged.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/plan.h"
#include "catalog/schema.h"
#include "common/random.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/node.h"
#include "engine/database.h"
#include "invalidation/independence.h"
#include "invalidation/strategies.h"
#include "sql/ast.h"
#include "workloads/application.h"
#include "workloads/toystore.h"

namespace dssp::analysis {
namespace {

using invalidation::CachedQueryView;
using invalidation::Decision;
using invalidation::StatementInspectionStrategy;
using invalidation::TemplateInspectionStrategy;
using invalidation::UpdateView;
using templates::QueryTemplate;
using templates::UpdateTemplate;

// ----- Random parameter binding. -----

// Infers each parameter's column type by walking the template statement
// against the catalog: a parameter compared with (or assigned to) a column
// gets that column's type; LIMIT parameters and unresolvable ones get int64.
std::vector<catalog::ColumnType> ParamTypes(const sql::Statement& stmt,
                                            const catalog::Catalog& catalog) {
  std::vector<catalog::ColumnType> types(
      static_cast<size_t>(stmt.num_params), catalog::ColumnType::kInt64);
  const auto note = [&](const sql::Operand& param, const std::string& table,
                        const std::string& column) {
    if (!sql::IsParameter(param)) return;
    const size_t index =
        static_cast<size_t>(std::get<sql::Parameter>(param).index);
    if (index >= types.size()) return;
    const catalog::TableSchema* schema = catalog.FindTable(table);
    if (schema == nullptr) return;
    const auto col = schema->ColumnIndex(column);
    if (col.has_value()) types[index] = schema->columns()[*col].type;
  };
  const auto note_where = [&](const std::vector<sql::Comparison>& where,
                              const std::vector<sql::TableRef>& from) {
    for (const sql::Comparison& cmp : where) {
      for (int side = 0; side < 2; ++side) {
        const sql::Operand& a = side == 0 ? cmp.lhs : cmp.rhs;
        const sql::Operand& b = side == 0 ? cmp.rhs : cmp.lhs;
        if (!sql::IsColumn(a)) continue;
        const std::string& column = std::get<sql::ColumnRef>(a).column;
        for (const sql::TableRef& ref : from) note(b, ref.table, column);
      }
    }
  };
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      note_where(stmt.select().where, stmt.select().from);
      break;
    case sql::StatementKind::kInsert: {
      const sql::InsertStatement& insert = stmt.insert();
      for (size_t i = 0;
           i < insert.columns.size() && i < insert.values.size(); ++i) {
        note(insert.values[i], insert.table, insert.columns[i]);
      }
      break;
    }
    case sql::StatementKind::kDelete:
      note_where(stmt.del().where, {{stmt.del().table, ""}});
      break;
    case sql::StatementKind::kUpdate: {
      const sql::UpdateStatement& mod = stmt.update();
      for (const auto& [column, operand] : mod.set) {
        note(operand, mod.table, column);
      }
      note_where(mod.where, {{mod.table, ""}});
      break;
    }
  }
  return types;
}

// Values are drawn from deliberately small domains so that equalities
// collide, intervals overlap and go empty, and the compiled programs see
// both outcomes of every test. `with_nulls` additionally mixes in NULLs
// (exercising the solver's NULL-excludes-row rules).
sql::Value RandomValue(Rng& rng, catalog::ColumnType type, bool with_nulls) {
  if (with_nulls && rng.NextBool(0.05)) return sql::Value();
  switch (type) {
    case catalog::ColumnType::kInt64:
      return sql::Value(rng.NextInt(-4, 14));
    case catalog::ColumnType::kDouble:
      return sql::Value(static_cast<double>(rng.NextInt(-4, 14)) +
                        (rng.NextBool(0.5) ? 0.5 : 0.0));
    case catalog::ColumnType::kString: {
      static constexpr const char* kPool[] = {"a", "b", "c", "m", "z"};
      return sql::Value(kPool[rng.NextBelow(5)]);
    }
  }
  return sql::Value(int64_t{0});
}

std::vector<sql::Value> RandomParams(
    Rng& rng, const std::vector<catalog::ColumnType>& types,
    bool with_nulls) {
  std::vector<sql::Value> params;
  params.reserve(types.size());
  for (const catalog::ColumnType type : types) {
    params.push_back(RandomValue(rng, type, with_nulls));
  }
  return params;
}

// ----- The differential check proper. -----

// Resolves a compiled statement-level decision to a concrete
// independent/invalidate answer the same way StatementInspectionStrategy
// does (kRunSolver falls back to the general solver).
bool PlanSaysIndependent(const PairPlan& plan, const UpdateTemplate& u,
                         const sql::Statement& us, const QueryTemplate& q,
                         const sql::Statement& qs,
                         const catalog::Catalog& catalog) {
  if (plan.never_invalidate) return true;
  switch (EvaluatePairPlan(plan, us, qs)) {
    case StmtDecision::kIndependent:
      return true;
    case StmtDecision::kInvalidate:
      return false;
    case StmtDecision::kRunSolver:
      return invalidation::ProvablyIndependent(u, us, q, qs, catalog);
  }
  return false;
}

// One bound statement pair: legacy solver vs compiled plan, plus the
// strategy objects themselves (legacy vs plan-backed) at stmt/stmt
// exposure. Returns the number of compared statement pairs (1).
size_t CheckOnePair(const PairPlan& pair_plan, const UpdateTemplate& u,
                    size_t u_index, const sql::Statement& us,
                    const QueryTemplate& q, size_t q_index,
                    const sql::Statement& qs,
                    const catalog::Catalog& catalog,
                    const StatementInspectionStrategy& legacy_sis,
                    const StatementInspectionStrategy& plan_sis) {
  const bool legacy =
      invalidation::ProvablyIndependent(u, us, q, qs, catalog);
  const bool compiled =
      PlanSaysIndependent(pair_plan, u, us, q, qs, catalog);
  EXPECT_EQ(legacy, compiled)
      << "pair (" << u.id() << ", " << q.id() << ") kind "
      << PlanKindName(pair_plan.kind) << " [" << pair_plan.rationale
      << "]\n  update: " << sql::ToSql(us) << "\n  query:  " << sql::ToSql(qs);

  UpdateView legacy_u{analysis::ExposureLevel::kStmt, &u, &us};
  CachedQueryView legacy_q{analysis::ExposureLevel::kStmt, &q, &qs};
  UpdateView plan_u = legacy_u;
  plan_u.template_index = u_index;
  CachedQueryView plan_q = legacy_q;
  plan_q.template_index = q_index;
  EXPECT_EQ(legacy_sis.Decide(legacy_u, legacy_q),
            plan_sis.Decide(plan_u, plan_q))
      << "MSIS mismatch on (" << u.id() << ", " << q.id() << ")";
  return 1;
}

// Template-level check: plan-backed MTIS vs legacy MTIS for one pair.
void CheckTemplateLevel(const UpdateTemplate& u, size_t u_index,
                        const QueryTemplate& q, size_t q_index,
                        const TemplateInspectionStrategy& legacy_tis,
                        const TemplateInspectionStrategy& plan_tis) {
  UpdateView legacy_u{analysis::ExposureLevel::kTemplate, &u, nullptr};
  CachedQueryView legacy_q{analysis::ExposureLevel::kTemplate, &q, nullptr};
  UpdateView plan_u = legacy_u;
  plan_u.template_index = u_index;
  CachedQueryView plan_q = legacy_q;
  plan_q.template_index = q_index;
  EXPECT_EQ(legacy_tis.Decide(legacy_u, legacy_q),
            plan_tis.Decide(plan_u, plan_q))
      << "MTIS mismatch on (" << u.id() << ", " << q.id() << ")";
}

// Shared across both TESTs below so the 100k-pair floor applies to the
// whole differential surface, as the acceptance criteria phrase it.
size_t g_compared_pairs = 0;

TEST(PlanDifferentialTest, WorkloadsBitIdenticalToLegacy) {
  Rng rng(20260805);
  for (const std::string app_name :
       {"toystore", "auction", "bboard", "bookstore"}) {
    service::DsspNode node;
    service::ScalableApp app(app_name, &node,
                             crypto::KeyRing::FromPassphrase("differential"));
    auto workload = workloads::MakeApplication(app_name);
    ASSERT_TRUE(workload->Setup(app, 0.25, 41).ok());
    ASSERT_TRUE(app.Finalize().ok());

    const templates::TemplateSet& templates = app.templates();
    const catalog::Catalog& catalog = app.home().database().catalog();
    const InvalidationPlan plan = InvalidationPlan::Compile(templates, catalog);
    ASSERT_EQ(plan.num_updates(), templates.num_updates());
    ASSERT_EQ(plan.num_queries(), templates.num_queries());
    // No paper-workload template may defeat the compiler.
    EXPECT_EQ(plan.Summarize().solver_fallback, 0u) << app_name;

    const TemplateInspectionStrategy legacy_tis(catalog);
    const TemplateInspectionStrategy plan_tis(
        catalog, /*use_integrity_constraints=*/true, &plan);
    const StatementInspectionStrategy legacy_sis(catalog);
    const StatementInspectionStrategy plan_sis(
        catalog, /*use_independence_solver=*/true,
        /*use_integrity_constraints=*/true, &plan);

    // Cache per-template parameter types and a pool of bindings.
    std::vector<std::vector<catalog::ColumnType>> qtypes, utypes;
    for (const QueryTemplate& q : templates.queries()) {
      qtypes.push_back(ParamTypes(q.statement(), catalog));
    }
    for (const UpdateTemplate& u : templates.updates()) {
      utypes.push_back(ParamTypes(u.statement(), catalog));
    }

    constexpr int kBindingsPerPair = 60;
    for (size_t ui = 0; ui < templates.num_updates(); ++ui) {
      const UpdateTemplate& u = templates.updates()[ui];
      for (size_t qi = 0; qi < templates.num_queries(); ++qi) {
        const QueryTemplate& q = templates.queries()[qi];
        CheckTemplateLevel(u, ui, q, qi, legacy_tis, plan_tis);
        const PairPlan& pair_plan = plan.pair(ui, qi);
        for (int i = 0; i < kBindingsPerPair; ++i) {
          const sql::Statement us =
              u.Bind(RandomParams(rng, utypes[ui], /*with_nulls=*/true));
          const sql::Statement qs =
              q.Bind(RandomParams(rng, qtypes[qi], /*with_nulls=*/true));
          g_compared_pairs += CheckOnePair(pair_plan, u, ui, us, q, qi, qs,
                                          catalog, legacy_sis, plan_sis);
        }
      }
    }
  }
}

// ----- Brute-force database oracle (soundness of compiled DNIs). -----

TEST(PlanDifferentialTest, CompiledDniNeverChangesResults) {
  auto bundle = workloads::MakeToystore();
  ASSERT_TRUE(bundle.ok());
  engine::Database& db = *bundle->db;
  const templates::TemplateSet& templates = bundle->templates;
  const catalog::Catalog& catalog = db.catalog();
  const InvalidationPlan plan = InvalidationPlan::Compile(templates, catalog);

  std::vector<std::vector<catalog::ColumnType>> qtypes, utypes;
  for (const QueryTemplate& q : templates.queries()) {
    qtypes.push_back(ParamTypes(q.statement(), catalog));
  }
  for (const UpdateTemplate& u : templates.updates()) {
    utypes.push_back(ParamTypes(u.statement(), catalog));
  }

  Rng rng(7);
  size_t oracle_checks = 0;
  for (int round = 0; round < 400; ++round) {
    const size_t ui = rng.NextBelow(templates.num_updates());
    const UpdateTemplate& u = templates.updates()[ui];
    // Oracle bindings avoid NULLs: the engine's constraint checks reject
    // NULL keys, which would just skip the round.
    const sql::Statement us =
        u.Bind(RandomParams(rng, utypes[ui], /*with_nulls=*/false));

    struct Probe {
      size_t qi;
      sql::Statement qs;
      engine::QueryResult before;
      bool independent;
    };
    std::vector<Probe> probes;
    for (size_t qi = 0; qi < templates.num_queries(); ++qi) {
      const QueryTemplate& q = templates.queries()[qi];
      sql::Statement qs =
          q.Bind(RandomParams(rng, qtypes[qi], /*with_nulls=*/false));
      auto before = db.ExecuteQuery(qs);
      ASSERT_TRUE(before.ok());
      const bool independent = PlanSaysIndependent(
          plan.pair(ui, qi), u, us, templates.queries()[qi], qs, catalog);
      probes.push_back(Probe{qi, std::move(qs), std::move(*before),
                             independent});
    }

    // Apply the update for real; constraint rejections (duplicate PK,
    // missing FK target) leave the database unchanged, so the probes still
    // hold trivially and the round stays valid.
    (void)db.ExecuteUpdate(us);

    for (const Probe& probe : probes) {
      auto after = db.ExecuteQuery(probe.qs);
      ASSERT_TRUE(after.ok());
      if (probe.independent) {
        EXPECT_TRUE(probe.before.SameResult(*after))
            << "unsound DNI: (" << u.id() << ", "
            << templates.queries()[probe.qi].id()
            << ")\n  update: " << sql::ToSql(us)
            << "\n  query:  " << sql::ToSql(probe.qs);
        ++oracle_checks;
      }
    }
  }
  EXPECT_GT(oracle_checks, 100u);
}

// ----- Randomly generated templates over a synthetic PK/FK schema. -----

catalog::Catalog SyntheticCatalog() {
  catalog::Catalog catalog;
  DSSP_CHECK(catalog
                 .AddTable(catalog::TableSchema(
                     "t1",
                     {{"a", catalog::ColumnType::kInt64},
                      {"b", catalog::ColumnType::kInt64},
                      {"c", catalog::ColumnType::kString}},
                     {"a"}))
                 .ok());
  DSSP_CHECK(catalog
                 .AddTable(catalog::TableSchema(
                     "t2",
                     {{"x", catalog::ColumnType::kInt64},
                      {"r", catalog::ColumnType::kInt64},
                      {"y", catalog::ColumnType::kInt64}},
                     {"x"}, {{"r", "t1", "a"}}))
                 .ok());
  return catalog;
}

struct RandomColumn {
  const char* table;
  const char* name;
  catalog::ColumnType type;
};

constexpr RandomColumn kColumns[] = {
    {"t1", "a", catalog::ColumnType::kInt64},
    {"t1", "b", catalog::ColumnType::kInt64},
    {"t1", "c", catalog::ColumnType::kString},
    {"t2", "x", catalog::ColumnType::kInt64},
    {"t2", "r", catalog::ColumnType::kInt64},
    {"t2", "y", catalog::ColumnType::kInt64},
};

std::string RandomLiteral(Rng& rng, catalog::ColumnType type) {
  if (type == catalog::ColumnType::kString) {
    static constexpr const char* kPool[] = {"'a'", "'b'", "'m'"};
    return kPool[rng.NextBelow(3)];
  }
  return std::to_string(rng.NextInt(-3, 12));
}

std::string RandomOperandSql(Rng& rng, catalog::ColumnType type) {
  return rng.NextBool(0.6) ? "?" : RandomLiteral(rng, type);
}

constexpr const char* kOps[] = {"=", "<", ">", "<=", ">="};

// 0-3 random unary conjuncts over `table`'s columns.
std::string RandomConjuncts(Rng& rng, const std::string& table,
                            bool lead_with_and) {
  std::string sql;
  const int n = static_cast<int>(rng.NextBelow(4));
  bool first = !lead_with_and;
  for (int i = 0; i < n; ++i) {
    const RandomColumn& col = kColumns[rng.NextBelow(6)];
    if (table != col.table) continue;
    sql += first ? "" : " AND ";
    first = false;
    sql += std::string(col.name) + " " + kOps[rng.NextBelow(5)] + " " +
           RandomOperandSql(rng, col.type);
  }
  return sql;
}

std::string RandomQuerySql(Rng& rng) {
  const bool join = rng.NextBool(0.35);
  std::string sql = "SELECT ";
  if (join) {
    sql += "b, y FROM t1, t2 WHERE r = a";
    sql += RandomConjuncts(rng, "t1", /*lead_with_and=*/true);
    sql += RandomConjuncts(rng, "t2", /*lead_with_and=*/true);
  } else {
    const std::string table = rng.NextBool(0.5) ? "t1" : "t2";
    sql += (table == "t1" ? "a, b, c" : "x, r, y");
    sql += " FROM " + table;
    const std::string where =
        RandomConjuncts(rng, table, /*lead_with_and=*/false);
    if (!where.empty()) sql += " WHERE " + where;
  }
  return sql;
}

std::string RandomUpdateSql(Rng& rng) {
  const std::string table = rng.NextBool(0.5) ? "t1" : "t2";
  switch (rng.NextBelow(3)) {
    case 0:  // Insertion.
      if (table == "t1") {
        return "INSERT INTO t1 (a, b, c) VALUES (?, " +
               RandomOperandSql(rng, catalog::ColumnType::kInt64) + ", " +
               RandomOperandSql(rng, catalog::ColumnType::kString) + ")";
      }
      return "INSERT INTO t2 (x, r, y) VALUES (?, ?, " +
             RandomOperandSql(rng, catalog::ColumnType::kInt64) + ")";
    case 1: {  // Deletion.
      std::string sql = "DELETE FROM " + table;
      const std::string where =
          RandomConjuncts(rng, table, /*lead_with_and=*/false);
      if (!where.empty()) sql += " WHERE " + where;
      return sql;
    }
    default: {  // Modification.
      std::string sql = "UPDATE " + table + " SET ";
      if (table == "t1") {
        sql += "b = " + RandomOperandSql(rng, catalog::ColumnType::kInt64);
        if (rng.NextBool(0.4)) {
          sql +=
              ", c = " + RandomOperandSql(rng, catalog::ColumnType::kString);
        }
      } else {
        sql += "y = " + RandomOperandSql(rng, catalog::ColumnType::kInt64);
        if (rng.NextBool(0.4)) {
          sql += ", r = " + RandomOperandSql(rng, catalog::ColumnType::kInt64);
        }
      }
      const std::string where =
          RandomConjuncts(rng, table, /*lead_with_and=*/false);
      if (!where.empty()) sql += " WHERE " + where;
      return sql;
    }
  }
}

TEST(PlanDifferentialTest, RandomTemplatesBitIdenticalToLegacy) {
  const catalog::Catalog catalog = SyntheticCatalog();
  Rng rng(424242);
  size_t kinds[5] = {0, 0, 0, 0, 0};

  // Keep generating template pairs until the whole differential surface
  // (workload part + this one) has crossed the 100k bound-pair floor.
  int generated = 0;
  while (g_compared_pairs < 100000 || generated < 300) {
    ASSERT_LT(generated, 20000) << "randomized part failed to converge";
    auto q = QueryTemplate::Create("q", RandomQuerySql(rng), catalog);
    auto u = UpdateTemplate::Create("u", RandomUpdateSql(rng), catalog);
    if (!q.ok() || !u.ok()) continue;
    ++generated;

    const PairPlan pair_plan = CompilePairPlan(*u, *q, catalog);
    ++kinds[static_cast<size_t>(pair_plan.kind)];

    const std::vector<catalog::ColumnType> ut =
        ParamTypes(u->statement(), catalog);
    const std::vector<catalog::ColumnType> qt =
        ParamTypes(q->statement(), catalog);
    for (int i = 0; i < 40; ++i) {
      const sql::Statement us =
          u->Bind(RandomParams(rng, ut, /*with_nulls=*/true));
      const sql::Statement qs =
          q->Bind(RandomParams(rng, qt, /*with_nulls=*/true));
      const bool legacy =
          invalidation::ProvablyIndependent(*u, us, *q, qs, catalog);
      const bool compiled =
          PlanSaysIndependent(pair_plan, *u, us, *q, qs, catalog);
      EXPECT_EQ(legacy, compiled)
          << "kind " << PlanKindName(pair_plan.kind) << " ["
          << pair_plan.rationale << "]\n  update tmpl: " << u->ToSql()
          << "\n  query tmpl:  " << q->ToSql()
          << "\n  update: " << sql::ToSql(us)
          << "\n  query:  " << sql::ToSql(qs);
      ++g_compared_pairs;
      if (::testing::Test::HasFailure()) return;  // Don't spam mismatches.
    }
  }
  EXPECT_GE(g_compared_pairs, 100000u);
  // The generator must exercise every compiled outcome (fallback excepted:
  // these shapes all compile).
  EXPECT_GT(kinds[static_cast<size_t>(PlanKind::kNeverInvalidate)], 0u);
  EXPECT_GT(kinds[static_cast<size_t>(PlanKind::kAlwaysInvalidate)], 0u);
  EXPECT_GT(kinds[static_cast<size_t>(PlanKind::kParamProgram)], 0u);
  EXPECT_GT(kinds[static_cast<size_t>(PlanKind::kViewTest)], 0u);
}

}  // namespace
}  // namespace dssp::analysis
