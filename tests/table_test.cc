#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "engine/table.h"

namespace dssp::engine {
namespace {

using catalog::ColumnType;
using catalog::TableSchema;
using sql::Value;

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : schema_("toys",
                {{"toy_id", ColumnType::kInt64},
                 {"toy_name", ColumnType::kString},
                 {"qty", ColumnType::kInt64}},
                {"toy_id"}),
        table_(schema_) {}

  catalog::TableSchema schema_;
  Table table_;
};

TEST_F(TableTest, InsertAndLookup) {
  ASSERT_TRUE(table_.Insert({Value(1), Value("car"), Value(5)}).ok());
  ASSERT_TRUE(table_.Insert({Value(2), Value("doll"), Value(7)}).ok());
  EXPECT_EQ(table_.num_rows(), 2u);
  const auto slots = table_.SlotsWithValue(1, Value("car"));
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(table_.RowAt(slots[0])[2], Value(5));
}

TEST_F(TableTest, RejectsArityMismatch) {
  EXPECT_FALSE(table_.Insert({Value(1), Value("car")}).ok());
}

TEST_F(TableTest, RejectsTypeMismatch) {
  EXPECT_FALSE(table_.Insert({Value("x"), Value("car"), Value(1)}).ok());
  EXPECT_FALSE(table_.Insert({Value(1), Value(2), Value(3)}).ok());
  EXPECT_FALSE(table_.Insert({Value(1), Value("car"), Value(1.5)}).ok());
}

TEST_F(TableTest, AllowsNulls) {
  EXPECT_TRUE(table_.Insert({Value(1), Value::Null(), Value::Null()}).ok());
}

TEST_F(TableTest, EnforcesPrimaryKeyUniqueness) {
  ASSERT_TRUE(table_.Insert({Value(1), Value("car"), Value(5)}).ok());
  const Status dup = table_.Insert({Value(1), Value("boat"), Value(9)});
  EXPECT_EQ(dup.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(table_.num_rows(), 1u);
}

TEST_F(TableTest, DeleteMaintainsIndexes) {
  ASSERT_TRUE(table_.Insert({Value(1), Value("car"), Value(5)}).ok());
  ASSERT_TRUE(table_.Insert({Value(2), Value("car"), Value(6)}).ok());
  const auto slots = table_.SlotsWithValue(1, Value("car"));
  ASSERT_EQ(slots.size(), 2u);
  table_.DeleteSlot(slots[0]);
  EXPECT_EQ(table_.num_rows(), 1u);
  EXPECT_EQ(table_.SlotsWithValue(1, Value("car")).size(), 1u);
  EXPECT_FALSE(table_.IsLive(slots[0]));
}

TEST_F(TableTest, SlotReuseAfterDelete) {
  ASSERT_TRUE(table_.Insert({Value(1), Value("a"), Value(1)}).ok());
  const auto slots = table_.SlotsWithValue(0, Value(1));
  table_.DeleteSlot(slots[0]);
  // Primary key is free again.
  ASSERT_TRUE(table_.Insert({Value(1), Value("b"), Value(2)}).ok());
  EXPECT_EQ(table_.num_rows(), 1u);
  const auto again = table_.SlotsWithValue(0, Value(1));
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(table_.RowAt(again[0])[1], Value("b"));
}

TEST_F(TableTest, UpdateSlotReindexes) {
  ASSERT_TRUE(table_.Insert({Value(1), Value("car"), Value(5)}).ok());
  const auto slots = table_.SlotsWithValue(0, Value(1));
  table_.UpdateSlot(slots[0], 2, Value(99));
  EXPECT_TRUE(table_.SlotsWithValue(2, Value(5)).empty());
  ASSERT_EQ(table_.SlotsWithValue(2, Value(99)).size(), 1u);
  EXPECT_EQ(table_.RowAt(slots[0])[2], Value(99));
}

TEST_F(TableTest, ContainsValue) {
  ASSERT_TRUE(table_.Insert({Value(1), Value("car"), Value(5)}).ok());
  EXPECT_TRUE(table_.ContainsValue(1, Value("car")));
  EXPECT_FALSE(table_.ContainsValue(1, Value("boat")));
}

TEST_F(TableTest, AllSlotsAscending) {
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        table_.Insert({Value(i), Value("t"), Value(i)}).ok());
  }
  const auto slots = table_.AllSlots();
  ASSERT_EQ(slots.size(), 5u);
  for (size_t i = 1; i < slots.size(); ++i) {
    EXPECT_LT(slots[i - 1], slots[i]);
  }
}

TEST_F(TableTest, CompositePrimaryKey) {
  catalog::TableSchema schema(
      "ol", {{"o", ColumnType::kInt64}, {"l", ColumnType::kInt64}},
      {"o", "l"});
  Table table(schema);
  EXPECT_TRUE(table.Insert({Value(1), Value(1)}).ok());
  EXPECT_TRUE(table.Insert({Value(1), Value(2)}).ok());
  EXPECT_TRUE(table.Insert({Value(2), Value(1)}).ok());
  EXPECT_EQ(table.Insert({Value(1), Value(2)}).code(),
            StatusCode::kConstraintViolation);
}

TEST_F(TableTest, ManyRowsIndexScale) {
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(table_
                    .Insert({Value(i), Value("name" + std::to_string(i % 97)),
                             Value(i % 13)})
                    .ok());
  }
  EXPECT_EQ(table_.num_rows(), 5000u);
  // 5000/97 ~ 51 rows share each name.
  const auto by_name = table_.SlotsWithValue(1, Value("name13"));
  EXPECT_GE(by_name.size(), 50u);
  const auto by_qty = table_.SlotsWithValue(2, Value(7));
  EXPECT_GE(by_qty.size(), 300u);
}

}  // namespace
}  // namespace dssp::engine
