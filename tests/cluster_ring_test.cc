#include "cluster/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dssp::cluster {
namespace {

std::string Key(int i) { return "key-" + std::to_string(i); }

TEST(HashRingTest, SingleNodeOwnsEverything) {
  HashRing ring(/*seed=*/1);
  ring.AddNode(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.OwnerOf(Key(i)), 0);
    EXPECT_EQ(ring.Owners(Key(i), 3), std::vector<int>{0});
  }
}

TEST(HashRingTest, EmptyRingHasNoOwners) {
  HashRing ring(/*seed=*/1);
  EXPECT_EQ(ring.OwnerOf("k"), -1);
  EXPECT_TRUE(ring.Owners("k", 2).empty());
  ring.AddNode(3);
  ring.RemoveNode(3);
  EXPECT_EQ(ring.OwnerOf("k"), -1);
}

TEST(HashRingTest, PlacementIsDeterministicInSeedAndMembers) {
  HashRing a(/*seed=*/42), b(/*seed=*/42);
  // Insertion order must not matter: placement is a pure function of the
  // (seed, member set) pair.
  for (int n : {0, 1, 2, 3}) a.AddNode(n);
  for (int n : {3, 1, 0, 2}) b.AddNode(n);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Owners(Key(i), 2), b.Owners(Key(i), 2)) << Key(i);
  }
}

TEST(HashRingTest, DifferentSeedsGiveDifferentPlacements) {
  HashRing a(/*seed=*/1), b(/*seed=*/2);
  for (int n = 0; n < 4; ++n) {
    a.AddNode(n);
    b.AddNode(n);
  }
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.OwnerOf(Key(i)) != b.OwnerOf(Key(i))) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(HashRingTest, OwnersAreDistinctAndCappedByMembership) {
  HashRing ring(/*seed=*/7);
  for (int n = 0; n < 3; ++n) ring.AddNode(n);
  for (int i = 0; i < 100; ++i) {
    const std::vector<int> owners = ring.Owners(Key(i), 5);
    EXPECT_EQ(owners.size(), 3u);
    std::set<int> distinct(owners.begin(), owners.end());
    EXPECT_EQ(distinct.size(), owners.size());
  }
}

TEST(HashRingTest, AddAndRemoveAreIdempotent) {
  HashRing ring(/*seed=*/9);
  ring.AddNode(0);
  ring.AddNode(1);
  const int before = ring.OwnerOf("stable-key");
  ring.AddNode(1);  // Already present.
  EXPECT_EQ(ring.OwnerOf("stable-key"), before);
  ring.RemoveNode(7);  // Never added.
  EXPECT_EQ(ring.OwnerOf("stable-key"), before);
  EXPECT_EQ(ring.num_nodes(), 2u);
}

TEST(HashRingTest, RemovalOnlyRemapsTheRemovedNodesKeys) {
  HashRing ring(/*seed=*/13);
  for (int n = 0; n < 8; ++n) ring.AddNode(n);
  std::map<std::string, int> before;
  for (int i = 0; i < 2000; ++i) before[Key(i)] = ring.OwnerOf(Key(i));

  ring.RemoveNode(3);
  for (const auto& [key, owner] : before) {
    if (owner == 3) {
      EXPECT_NE(ring.OwnerOf(key), 3);
    } else {
      // The consistent-hashing property: keys not owned by the departed
      // node keep their placement.
      EXPECT_EQ(ring.OwnerOf(key), owner) << key;
    }
  }
}

TEST(HashRingTest, RejoinRestoresTheOriginalPlacement) {
  HashRing ring(/*seed=*/17);
  for (int n = 0; n < 4; ++n) ring.AddNode(n);
  std::map<std::string, std::vector<int>> before;
  for (int i = 0; i < 500; ++i) before[Key(i)] = ring.Owners(Key(i), 2);
  ring.RemoveNode(2);
  ring.AddNode(2);
  for (const auto& [key, owners] : before) {
    EXPECT_EQ(ring.Owners(key, 2), owners) << key;
  }
}

TEST(HashRingTest, VirtualNodesBalanceLoad) {
  HashRing ring(/*seed=*/21);
  for (int n = 0; n < 8; ++n) ring.AddNode(n);
  const std::vector<double> shares = ring.LoadShares(/*probes=*/20000);
  ASSERT_EQ(shares.size(), 8u);
  const double max = *std::max_element(shares.begin(), shares.end());
  const double min = *std::min_element(shares.begin(), shares.end());
  EXPECT_GT(min, 0.0);
  // 64 vnodes/node keeps the spread modest; the bound here is deliberately
  // loose so the test pins the property, not one hash function's luck.
  EXPECT_LT(max / min, 2.5) << "max=" << max << " min=" << min;
}

TEST(HashRingTest, ReplicaOrderIsPreferenceOrder) {
  HashRing ring(/*seed=*/23);
  for (int n = 0; n < 4; ++n) ring.AddNode(n);
  for (int i = 0; i < 100; ++i) {
    const std::vector<int> owners = ring.Owners(Key(i), 3);
    ASSERT_GE(owners.size(), 2u);
    EXPECT_EQ(owners[0], ring.OwnerOf(Key(i)));
    // Dropping the owner promotes the first replica.
    HashRing without(/*seed=*/23);
    for (int n = 0; n < 4; ++n) {
      if (n != owners[0]) without.AddNode(n);
    }
    EXPECT_EQ(without.OwnerOf(Key(i)), owners[1]) << Key(i);
  }
}

}  // namespace
}  // namespace dssp::cluster
