#include <gtest/gtest.h>

#include "invalidation/independence.h"
#include "sql/parser.h"
#include "workloads/toystore.h"

namespace dssp::invalidation {
namespace {

using sql::CompareOp;
using sql::Value;
using templates::QueryTemplate;
using templates::UpdateTemplate;

// ----- UnaryConjunctionSatisfiable (the interval solver). -----

TEST(IntervalSolverTest, EmptyIsSatisfiable) {
  EXPECT_TRUE(UnaryConjunctionSatisfiable({}));
}

TEST(IntervalSolverTest, ContradictoryEqualities) {
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value(1)}, {"a", CompareOp::kEq, Value(2)}}));
  EXPECT_TRUE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value(1)}, {"a", CompareOp::kEq, Value(1)}}));
}

TEST(IntervalSolverTest, DifferentColumnsIndependent) {
  EXPECT_TRUE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value(1)}, {"b", CompareOp::kEq, Value(2)}}));
}

TEST(IntervalSolverTest, RangeIntersections) {
  // a > 5 AND a < 10: satisfiable.
  EXPECT_TRUE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kGt, Value(5)}, {"a", CompareOp::kLt, Value(10)}}));
  // a > 5 AND a < 5: empty.
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kGt, Value(5)}, {"a", CompareOp::kLt, Value(5)}}));
  // a >= 5 AND a <= 5: the point 5.
  EXPECT_TRUE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kGe, Value(5)}, {"a", CompareOp::kLe, Value(5)}}));
  // a > 5 AND a <= 5: empty (half-open).
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kGt, Value(5)}, {"a", CompareOp::kLe, Value(5)}}));
  // a >= 10 AND a < 5: empty.
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kGe, Value(10)}, {"a", CompareOp::kLt, Value(5)}}));
}

TEST(IntervalSolverTest, EqualityVsRange) {
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value(3)}, {"a", CompareOp::kGt, Value(7)}}));
  EXPECT_TRUE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value(9)}, {"a", CompareOp::kGt, Value(7)}}));
}

TEST(IntervalSolverTest, StringsCompareLexicographically) {
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"s", CompareOp::kEq, Value("abc")},
       {"s", CompareOp::kEq, Value("abd")}}));
  EXPECT_TRUE(UnaryConjunctionSatisfiable(
      {{"s", CompareOp::kGe, Value("abc")},
       {"s", CompareOp::kLt, Value("abz")}}));
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"s", CompareOp::kGt, Value("b")}, {"s", CompareOp::kLt, Value("a")}}));
}

TEST(IntervalSolverTest, MixedNumericTypes) {
  // Int and double constraints interoperate.
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value(3)}, {"a", CompareOp::kLt, Value(2.5)}}));
  EXPECT_TRUE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value(3)}, {"a", CompareOp::kGt, Value(2.5)}}));
}

TEST(IntervalSolverTest, IncomparableTypesUnsatisfiable) {
  // A column cannot equal both a string and a number.
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value("x")}, {"a", CompareOp::kEq, Value(1)}}));
}

TEST(IntervalSolverTest, NullConstraintUnsatisfiable) {
  EXPECT_FALSE(UnaryConjunctionSatisfiable(
      {{"a", CompareOp::kEq, Value::Null()}}));
}

// Parameterized sweep: for every operator pair (op1 with bound 5, op2 with
// bound 7) check against a brute-force evaluation over a sample grid.
struct OpPair {
  CompareOp op1;
  CompareOp op2;
};

class SolverSweepTest : public ::testing::TestWithParam<OpPair> {};

bool Holds(double x, CompareOp op, double bound) {
  switch (op) {
    case CompareOp::kEq:
      return x == bound;
    case CompareOp::kLt:
      return x < bound;
    case CompareOp::kLe:
      return x <= bound;
    case CompareOp::kGt:
      return x > bound;
    case CompareOp::kGe:
      return x >= bound;
  }
  return false;
}

TEST_P(SolverSweepTest, MatchesBruteForceOnGrid) {
  const OpPair p = GetParam();
  const bool solver = UnaryConjunctionSatisfiable(
      {{"a", p.op1, Value(5.0)}, {"a", p.op2, Value(7.0)}});
  bool brute = false;
  for (double x = 0; x <= 12; x += 0.25) {
    if (Holds(x, p.op1, 5.0) && Holds(x, p.op2, 7.0)) {
      brute = true;
      break;
    }
  }
  // The solver is exact for these dense-domain cases.
  EXPECT_EQ(solver, brute)
      << sql::CompareOpSymbol(p.op1) << " 5 and "
      << sql::CompareOpSymbol(p.op2) << " 7";
}

INSTANTIATE_TEST_SUITE_P(
    AllOpPairs, SolverSweepTest, ::testing::ValuesIn([] {
      std::vector<OpPair> pairs;
      const CompareOp ops[] = {CompareOp::kEq, CompareOp::kLt, CompareOp::kLe,
                               CompareOp::kGt, CompareOp::kGe};
      for (CompareOp a : ops) {
        for (CompareOp b : ops) pairs.push_back({a, b});
      }
      return pairs;
    }()));

// ----- ProvablyIndependent. -----

class IndependenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bundle = workloads::MakeToystore();
    ASSERT_TRUE(bundle.ok());
    db_ = std::move(bundle->db);
  }

  const catalog::Catalog& catalog() const { return db_->catalog(); }

  QueryTemplate Query(const std::string& sql) {
    auto tmpl = QueryTemplate::Create("Qx", sql, catalog());
    EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
    return std::move(tmpl).value();
  }

  UpdateTemplate Update(const std::string& sql) {
    auto tmpl = UpdateTemplate::Create("Ux", sql, catalog());
    EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
    return std::move(tmpl).value();
  }

  bool Independent(const UpdateTemplate& u, const std::vector<Value>& up,
                   const QueryTemplate& q, const std::vector<Value>& qp) {
    return ProvablyIndependent(u, u.Bind(up), q, q.Bind(qp), catalog());
  }

  std::unique_ptr<engine::Database> db_;
};

TEST_F(IndependenceTest, DeletionDifferentKeyIsIndependent) {
  const UpdateTemplate del = Update("DELETE FROM toys WHERE toy_id = ?");
  const QueryTemplate q = Query("SELECT qty FROM toys WHERE toy_id = ?");
  EXPECT_TRUE(Independent(del, {Value(5)}, q, {Value(7)}));
  EXPECT_FALSE(Independent(del, {Value(5)}, q, {Value(5)}));
}

TEST_F(IndependenceTest, DeletionRangeOverlap) {
  const UpdateTemplate del = Update("DELETE FROM toys WHERE qty < ?");
  const QueryTemplate q = Query("SELECT toy_name FROM toys WHERE qty > ?");
  // Delete qty < 5 vs query qty > 10: disjoint ranges.
  EXPECT_TRUE(Independent(del, {Value(5)}, q, {Value(10)}));
  // Delete qty < 20 vs query qty > 10: overlap.
  EXPECT_FALSE(Independent(del, {Value(20)}, q, {Value(10)}));
}

TEST_F(IndependenceTest, InsertionValueFailsPredicate) {
  const UpdateTemplate insert = Update(
      "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)");
  const QueryTemplate q = Query("SELECT toy_id FROM toys WHERE toy_name = ?");
  EXPECT_TRUE(Independent(insert, {Value(99), Value("boat"), Value(1)}, q,
                          {Value("car")}));
  EXPECT_FALSE(Independent(insert, {Value(99), Value("car"), Value(1)}, q,
                           {Value("car")}));
}

TEST_F(IndependenceTest, InsertionRangePredicate) {
  const UpdateTemplate insert = Update(
      "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)");
  const QueryTemplate q = Query("SELECT toy_id FROM toys WHERE qty >= ?");
  EXPECT_TRUE(Independent(insert, {Value(99), Value("x"), Value(3)}, q,
                          {Value(10)}));
  EXPECT_FALSE(Independent(insert, {Value(99), Value("x"), Value(10)}, q,
                           {Value(10)}));
}

TEST_F(IndependenceTest, ModificationPaperExample) {
  // Section 4.4: UPDATE toys SET qty=10 WHERE toy_id=5 vs
  // SELECT toy_id FROM toys WHERE qty > 100. A statement-inspection
  // strategy must invalidate: the row with toy_id=5 might currently have
  // qty > 100 and be in the result.
  const UpdateTemplate mod =
      Update("UPDATE toys SET qty = ? WHERE toy_id = ?");
  const QueryTemplate q = Query("SELECT toy_id FROM toys WHERE qty > ?");
  EXPECT_FALSE(Independent(mod, {Value(10), Value(5)}, q, {Value(100)}));
}

TEST_F(IndependenceTest, ModificationCannotEnterOrLeave) {
  const UpdateTemplate mod =
      Update("UPDATE toys SET toy_name = ? WHERE qty < ?");
  const QueryTemplate q =
      Query("SELECT toy_name FROM toys WHERE qty > ?");
  // Modified rows have qty < 5 (unchanged by the SET); the query wants
  // qty > 10. They can neither be in the result nor enter it.
  EXPECT_TRUE(Independent(mod, {Value("renamed"), Value(5)}, q, {Value(10)}));
  // Overlapping ranges: dependent.
  EXPECT_FALSE(
      Independent(mod, {Value("renamed"), Value(50)}, q, {Value(10)}));
}

TEST_F(IndependenceTest, ModificationNewValueCannotEnter) {
  const UpdateTemplate mod =
      Update("UPDATE toys SET qty = ? WHERE toy_id = ?");
  const QueryTemplate q =
      Query("SELECT toy_name FROM toys WHERE qty = ?");
  // New qty = 10, query wants qty = 10: the row enters -> dependent.
  EXPECT_FALSE(Independent(mod, {Value(10), Value(5)}, q, {Value(10)}));
  // New qty = 3, query wants qty = 10: cannot enter, but the row might be
  // leaving the result (it might have had qty = 10) -> still dependent.
  EXPECT_FALSE(Independent(mod, {Value(3), Value(5)}, q, {Value(10)}));
}

TEST_F(IndependenceTest, ModificationOfUnqueriedColumnIsIgnorable) {
  const UpdateTemplate mod =
      Update("UPDATE toys SET qty = ? WHERE toy_id = ?");
  const QueryTemplate q =
      Query("SELECT toy_name FROM toys WHERE toy_name = ?");
  // qty is neither selected nor preserved: template-level ignorable.
  EXPECT_TRUE(Independent(mod, {Value(1), Value(1)}, q, {Value("car")}));
}

TEST_F(IndependenceTest, ModificationCannotEnterHelper) {
  const UpdateTemplate mod =
      Update("UPDATE toys SET qty = ? WHERE toy_id = ?");
  const QueryTemplate q = Query("SELECT toy_id FROM toys WHERE qty > ?");
  const sql::Statement query_stmt = q.Bind({Value(100)});
  // New qty = 10 cannot enter "qty > 100".
  EXPECT_TRUE(ModificationCannotEnter(mod, mod.Bind({Value(10), Value(5)}),
                                      query_stmt, catalog()));
  // New qty = 200 can.
  EXPECT_FALSE(ModificationCannotEnter(mod, mod.Bind({Value(200), Value(5)}),
                                       query_stmt, catalog()));
}

TEST_F(IndependenceTest, JoinQuerySlotScoping) {
  // Deleting a toy is independent of the customers/credit_card join.
  const UpdateTemplate del = Update("DELETE FROM toys WHERE toy_id = ?");
  const QueryTemplate join = Query(
      "SELECT cust_name FROM customers, credit_card "
      "WHERE cust_id = cid AND zip_code = ?");
  EXPECT_TRUE(Independent(del, {Value(1)}, join, {Value(10001)}));
}

TEST_F(IndependenceTest, SelfJoinRequiresBothSlotsExcluded) {
  const UpdateTemplate del = Update("DELETE FROM toys WHERE toy_id = ?");
  const QueryTemplate self_join = Query(
      "SELECT t1.toy_id FROM toys AS t1, toys AS t2 "
      "WHERE t1.toy_id = ? AND t2.toy_id = ? AND t1.qty = t2.qty");
  // Delete toy 9; query pins t1=1, t2=2: both slots excluded.
  EXPECT_TRUE(Independent(del, {Value(9)}, self_join, {Value(1), Value(2)}));
  // Delete toy 2: the t2 slot matches.
  EXPECT_FALSE(Independent(del, {Value(2)}, self_join, {Value(1), Value(2)}));
}

TEST_F(IndependenceTest, IntegrityConstraintToggle) {
  const UpdateTemplate insert = Update(
      "INSERT INTO customers (cust_id, cust_name) VALUES (?, ?)");
  const QueryTemplate q3 = Query(
      "SELECT cust_name FROM customers, credit_card "
      "WHERE cust_id = cid AND zip_code = ?");
  const sql::Statement u = insert.Bind({Value(999), Value("eve")});
  const sql::Statement qs = q3.Bind({Value(10001)});
  EXPECT_TRUE(ProvablyIndependent(insert, u, q3, qs, catalog(),
                                  /*use_integrity_constraints=*/true));
  EXPECT_FALSE(ProvablyIndependent(insert, u, q3, qs, catalog(),
                                   /*use_integrity_constraints=*/false));
}

}  // namespace
}  // namespace dssp::invalidation
