// Multi-tenant simulation: the paper's premise is that a cost-effective
// DSSP caches data for MANY applications at once (Figure 1). These tests
// run several applications against one shared DSSP node and verify
// isolation, per-tenant accounting, and shared-resource behaviour.

#include <gtest/gtest.h>

#include "crypto/keyring.h"
#include "sim/simulator.h"
#include "workloads/application.h"

namespace dssp::sim {
namespace {

struct TenantHarness {
  TenantHarness(const std::string& name, service::DsspNode* node,
                uint64_t seed)
      : app(name, node, crypto::KeyRing::FromPassphrase("mt-" + name)) {
    workload = workloads::MakeApplication(name);
    DSSP_CHECK_OK(workload->Setup(app, 0.25, seed));
    DSSP_CHECK_OK(app.Finalize());
    generator = workload->NewSession(seed + 1);
  }

  service::ScalableApp app;
  std::unique_ptr<workloads::Application> workload;
  std::unique_ptr<SessionGenerator> generator;
};

TEST(MultiTenantTest, PerTenantResultsAndIsolation) {
  service::DsspNode node;
  TenantHarness auction("auction", &node, 1);
  TenantHarness bboard("bboard", &node, 2);
  TenantHarness bookstore("bookstore", &node, 3);

  SimConfig config;
  config.duration_s = 60;
  auto results = RunMultiTenantSimulation(
      {Tenant{&auction.app, auction.generator.get(), 20},
       Tenant{&bboard.app, bboard.generator.get(), 15},
       Tenant{&bookstore.app, bookstore.generator.get(), 25}},
      config);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);

  for (const SimResult& result : *results) {
    EXPECT_GT(result.pages_completed, 20u);
    EXPECT_GT(result.db_ops, 20u);
    EXPECT_GT(result.mean_response_s, 0.0);
  }
  EXPECT_EQ((*results)[0].num_clients, 20);
  EXPECT_EQ((*results)[1].num_clients, 15);
  EXPECT_EQ((*results)[2].num_clients, 25);

  // Each tenant's cache is populated independently on the shared node.
  EXPECT_GT(node.CacheSize("auction"), 0u);
  EXPECT_GT(node.CacheSize("bboard"), 0u);
  EXPECT_GT(node.CacheSize("bookstore"), 0u);
  EXPECT_EQ(node.TotalCacheSize(),
            node.CacheSize("auction") + node.CacheSize("bboard") +
                node.CacheSize("bookstore"));

  // Invalidation stayed tenant-scoped: each tenant observed only its own
  // updates.
  for (const std::string name : {"auction", "bboard", "bookstore"}) {
    EXPECT_GT(node.stats(name).updates_observed, 0u) << name;
  }
}

TEST(MultiTenantTest, CoTenantLoadDoesNotCorruptAnswers) {
  // Run bookstore alone and with two noisy co-tenants; its query answers
  // must be identical (isolation), even though timing differs.
  SimConfig config;
  config.duration_s = 30;

  const auto run_bookstore_pages = [&](bool with_cotenants) {
    service::DsspNode node;
    TenantHarness bookstore("bookstore", &node, 3);
    std::unique_ptr<TenantHarness> auction;
    std::unique_ptr<TenantHarness> bboard;
    std::vector<Tenant> tenants = {
        Tenant{&bookstore.app, bookstore.generator.get(), 10}};
    if (with_cotenants) {
      auction = std::make_unique<TenantHarness>("auction", &node, 1);
      bboard = std::make_unique<TenantHarness>("bboard", &node, 2);
      tenants.push_back(Tenant{&auction->app, auction->generator.get(), 30});
      tenants.push_back(Tenant{&bboard->app, bboard->generator.get(), 30});
    }
    auto results = RunMultiTenantSimulation(tenants, config);
    DSSP_CHECK(results.ok());
    // Probe a deterministic set of queries after the run; answers reflect
    // only the bookstore's own trace... which differs between the two runs
    // (shared RNG), so instead verify via the master database directly.
    auto direct = bookstore.app.home().database().Query(
        "SELECT COUNT(*) FROM item WHERE i_cost >= 0.0");
    DSSP_CHECK(direct.ok());
    return direct->rows()[0][0].AsInt64();
  };

  // Item count never changes (no item deletions in the mix), regardless of
  // co-tenant presence.
  EXPECT_EQ(run_bookstore_pages(false), run_bookstore_pages(true));
}

TEST(MultiTenantTest, SharedDsspIsACommonResource) {
  // A saturating co-tenant slows the victim only through the shared DSSP
  // worker pool, never by invalidating its entries.
  service::DsspNode node;
  TenantHarness victim("toystore", &node, 5);
  TenantHarness noisy("bboard", &node, 6);

  SimConfig config;
  config.duration_s = 40;
  auto results = RunMultiTenantSimulation(
      {Tenant{&victim.app, victim.generator.get(), 10},
       Tenant{&noisy.app, noisy.generator.get(), 60}},
      config);
  ASSERT_TRUE(results.ok());
  // The victim's invalidations come only from its own updates.
  const auto& victim_stats = node.stats("toystore");
  EXPECT_EQ(victim_stats.updates_observed,
            (*results)[0].home_updates);
}

}  // namespace
}  // namespace dssp::sim
