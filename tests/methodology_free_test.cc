// THE paper's headline claim as an executable property: Step 2 of the
// scalability-conscious security design methodology is *free* — replaying
// the identical operation trace under (a) the Step-1 baseline (only the
// compulsory, law-mandated encryption) and (b) the final assignment (Step 1
// + every Step-2 reduction) yields exactly the same cache hits and exactly
// the same invalidations, for every benchmark application. Only the amount
// of encrypted information differs. (Section 3.2 frames the comparison the
// same way: the post-Step-1 behaviour is the baseline the reductions must
// not worsen.)

#include <gtest/gtest.h>

#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "sim/trace.h"
#include "workloads/application.h"

namespace dssp {
namespace {

class MethodologyFreeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodologyFreeTest, ReducedExposureChangesNothingButSecrecy) {
  // Record a trace once.
  std::vector<sim::DbOp> trace;
  analysis::ExposureAssignment baseline;
  analysis::ExposureAssignment reduced;
  size_t reductions = 0;
  {
    service::DsspNode node;
    service::ScalableApp app(GetParam(), &node,
                             crypto::KeyRing::FromPassphrase("rec"));
    auto workload = workloads::MakeApplication(GetParam());
    ASSERT_TRUE(workload->Setup(app, 0.25, 13).ok());
    auto generator = workload->NewSession(3);
    Rng rng(17);
    trace = sim::RecordPages(*generator, rng, 400);

    const auto& catalog = app.home().database().catalog();
    const analysis::SecurityReport report = analysis::RunMethodology(
        app.templates(), catalog, workload->CompulsoryEncryption(catalog));
    baseline = report.initial;
    reduced = report.final;
    for (const auto& change : report.changes) {
      if (change.final != change.initial) ++reductions;
    }
  }
  ASSERT_GT(trace.size(), 400u);
  // Step 2 actually reduced something (otherwise the property is vacuous).
  ASSERT_GT(reductions, 0u);

  const auto replay = [&](bool use_reduced) {
    service::DsspNode node;
    service::ScalableApp app(GetParam(), &node,
                             crypto::KeyRing::FromPassphrase("replay"));
    auto workload = workloads::MakeApplication(GetParam());
    DSSP_CHECK_OK(workload->Setup(app, 0.25, 13));
    DSSP_CHECK_OK(app.Finalize());
    DSSP_CHECK_OK(app.SetExposure(use_reduced ? reduced : baseline));
    auto stats = sim::ReplayTrace(app, trace);
    DSSP_CHECK(stats.ok());
    return *stats;
  };

  const sim::ReplayStats exposed = replay(false);
  const sim::ReplayStats secured = replay(true);

  // Identical observable behaviour, operation for operation.
  EXPECT_EQ(exposed.cache_hits, secured.cache_hits);
  EXPECT_EQ(exposed.entries_invalidated, secured.entries_invalidated);
  EXPECT_EQ(exposed.rows_returned, secured.rows_returned);
  EXPECT_EQ(exposed.rows_affected, secured.rows_affected);
  EXPECT_EQ(exposed.queries, secured.queries);
  EXPECT_EQ(exposed.updates, secured.updates);
}

INSTANTIATE_TEST_SUITE_P(Apps, MethodologyFreeTest,
                         ::testing::Values("toystore", "auction", "bboard",
                                           "bookstore"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dssp
