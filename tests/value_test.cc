#include <gtest/gtest.h>

#include "sql/value.h"

namespace dssp::sql {
namespace {

TEST(ValueTest, Types) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(42).type(), ValueType::kInt64);
  EXPECT_EQ(Value(4.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("x").type(), ValueType::kString);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(1).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("1").is_numeric());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value(7).AsDouble(), 7.0);  // Int widens to double.
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_EQ(Value(1).Compare(Value(2)), -1);
  EXPECT_EQ(Value(2).Compare(Value(2)), 0);
  EXPECT_EQ(Value(3).Compare(Value(2)), 1);
  EXPECT_EQ(Value(2).Compare(Value(2.0)), 0);  // Cross int/double.
  EXPECT_EQ(Value(1.5).Compare(Value(2)), -1);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_GT(Value("b").Compare(Value("ab")), 0);
}

TEST(ValueTest, NullsSortFirstAndEqualEachOther) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value(0)), 0);
  EXPECT_GT(Value("").Compare(Value::Null()), 0);
}

TEST(ValueTest, EqualityOperators) {
  EXPECT_TRUE(Value(3) == Value(3));
  EXPECT_TRUE(Value(3) == Value(3.0));
  EXPECT_FALSE(Value(3) == Value(4));
  EXPECT_TRUE(Value(1) < Value(2));
}

TEST(ValueTest, SqlLiterals) {
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value(42).ToSqlLiteral(), "42");
  EXPECT_EQ(Value(-5).ToSqlLiteral(), "-5");
  EXPECT_EQ(Value("hello").ToSqlLiteral(), "'hello'");
  EXPECT_EQ(Value("it's").ToSqlLiteral(), "'it''s'");
  // Doubles print so they re-parse as doubles.
  EXPECT_EQ(Value(2.0).ToSqlLiteral(), "2.0");
  EXPECT_EQ(Value(2.5).ToSqlLiteral(), "2.5");
}

TEST(ValueTest, HashConsistentWithNumericEquality) {
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value("x").Hash(), Value("y").Hash());
  EXPECT_NE(Value(1).Hash(), Value(2).Hash());
}

TEST(ValueTest, EncodeForKeyDistinguishesTypes) {
  EXPECT_NE(Value(1).EncodeForKey(), Value("1").EncodeForKey());
  EXPECT_NE(Value(1).EncodeForKey(), Value(1.0).EncodeForKey());
  EXPECT_NE(Value::Null().EncodeForKey(), Value(0).EncodeForKey());
}

class ValueCodecTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueCodecTest, DecodeInvertsEncode) {
  const Value original = GetParam();
  const std::string encoded = original.EncodeForKey();
  size_t pos = 0;
  Value decoded;
  ASSERT_TRUE(Value::DecodeFromKey(encoded, &pos, &decoded));
  EXPECT_EQ(pos, encoded.size());
  EXPECT_EQ(decoded.type(), original.type());
  EXPECT_TRUE(decoded == original || (decoded.is_null() && original.is_null()));
}

INSTANTIATE_TEST_SUITE_P(
    Values, ValueCodecTest,
    ::testing::Values(Value::Null(), Value(0), Value(-1), Value(1),
                      Value(int64_t{1} << 62), Value(0.0), Value(-3.25),
                      Value(1e100), Value(""), Value("a"),
                      Value(std::string(1000, 'z')),
                      Value("embedded\0null\x01"), Value("unicode ☃")));

TEST(ValueCodecTest, DecodeRejectsTruncatedInput) {
  const std::string encoded = Value(12345).EncodeForKey();
  size_t pos = 0;
  Value out;
  EXPECT_FALSE(Value::DecodeFromKey(encoded.substr(0, 4), &pos, &out));
  pos = 0;
  EXPECT_FALSE(Value::DecodeFromKey("", &pos, &out));
}

TEST(ValueCodecTest, DecodeRejectsBadTag) {
  size_t pos = 0;
  Value out;
  EXPECT_FALSE(Value::DecodeFromKey("\x7fgarbage", &pos, &out));
}

TEST(ValueCodecTest, DecodesSequence) {
  const std::string encoded =
      Value(1).EncodeForKey() + Value("two").EncodeForKey() +
      Value(3.0).EncodeForKey();
  size_t pos = 0;
  Value a;
  Value b;
  Value c;
  ASSERT_TRUE(Value::DecodeFromKey(encoded, &pos, &a));
  ASSERT_TRUE(Value::DecodeFromKey(encoded, &pos, &b));
  ASSERT_TRUE(Value::DecodeFromKey(encoded, &pos, &c));
  EXPECT_EQ(pos, encoded.size());
  EXPECT_TRUE(a == Value(1));
  EXPECT_TRUE(b == Value("two"));
  EXPECT_TRUE(c == Value(3.0));
}

}  // namespace
}  // namespace dssp::sql
