#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/methodology.h"
#include "workloads/toystore.h"

namespace dssp::analysis {
namespace {

class MethodologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bundle = workloads::MakeToystore();
    ASSERT_TRUE(bundle.ok());
    db_ = std::move(bundle->db);
    templates_ = std::move(bundle->templates);
    ipm_ = IpmCharacterization::Compute(templates_, db_->catalog());
    // Paper Section 3.2: credit-card numbers must not be exposed.
    policy_.sensitive_attributes.insert(
        templates::AttributeId{"credit_card", "number"});
  }

  const catalog::Catalog& catalog() const { return db_->catalog(); }

  std::unique_ptr<engine::Database> db_;
  templates::TemplateSet templates_;
  IpmCharacterization ipm_{};
  CompulsoryPolicy policy_;
};

// ----- SymbolFor (Figure 6). -----

TEST(ExposureTest, SymbolForMatchesFigure6) {
  using EL = ExposureLevel;
  EXPECT_EQ(SymbolFor(EL::kBlind, EL::kView), IpmSymbol::kOne);
  EXPECT_EQ(SymbolFor(EL::kStmt, EL::kBlind), IpmSymbol::kOne);
  EXPECT_EQ(SymbolFor(EL::kTemplate, EL::kView), IpmSymbol::kA);
  EXPECT_EQ(SymbolFor(EL::kStmt, EL::kTemplate), IpmSymbol::kA);
  EXPECT_EQ(SymbolFor(EL::kTemplate, EL::kTemplate), IpmSymbol::kA);
  EXPECT_EQ(SymbolFor(EL::kStmt, EL::kStmt), IpmSymbol::kB);
  EXPECT_EQ(SymbolFor(EL::kStmt, EL::kView), IpmSymbol::kC);
}

TEST(ExposureTest, Names) {
  EXPECT_STREQ(ExposureLevelName(ExposureLevel::kBlind), "blind");
  EXPECT_STREQ(ExposureLevelName(ExposureLevel::kView), "view");
  EXPECT_STREQ(IpmSymbolName(IpmSymbol::kA), "A");
}

// Regression: nothing used to enforce the "updates are never view-exposed"
// invariant; a bad assignment crashed deep inside SymbolFor. Validate()
// rejects it with a clear error at the methodology entry points instead.
TEST(ExposureTest, ValidateRejectsViewExposedUpdates) {
  ExposureAssignment bad = ExposureAssignment::FullExposure(2, 3);
  EXPECT_TRUE(bad.Validate().ok());
  bad.update_levels[1] = ExposureLevel::kView;
  const Status status = bad.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("update template 1"), std::string::npos);
  EXPECT_NE(status.message().find("view"), std::string::npos);
}

TEST(ExposureTest, ValidateAcceptsFactoryAssignments) {
  EXPECT_TRUE(ExposureAssignment::FullExposure(4, 4).Validate().ok());
  EXPECT_TRUE(ExposureAssignment::FullEncryption(4, 4).Validate().ok());
  // View is a legal level for queries.
  ExposureAssignment queries_view = ExposureAssignment::FullEncryption(1, 1);
  queries_view.query_levels[0] = ExposureLevel::kView;
  EXPECT_TRUE(queries_view.Validate().ok());
}

using MethodologyDeathTest = MethodologyTest;

TEST_F(MethodologyDeathTest, EntryPointsRejectViewExposedUpdates) {
  ExposureAssignment bad = ExposureAssignment::FullExposure(
      templates_.num_queries(), templates_.num_updates());
  bad.update_levels[0] = ExposureLevel::kView;
  EXPECT_DEATH(ReduceExposure(templates_, ipm_, bad),
               "view exposure level");
  EXPECT_DEATH(SameInvalidationProbabilities(templates_, ipm_, bad, bad),
               "view exposure level");
}

TEST(ExposureTest, FactoryAssignments) {
  const ExposureAssignment full = ExposureAssignment::FullExposure(2, 3);
  EXPECT_EQ(full.query_levels,
            (std::vector<ExposureLevel>{ExposureLevel::kView,
                                        ExposureLevel::kView}));
  EXPECT_EQ(full.update_levels.size(), 3u);
  EXPECT_EQ(full.update_levels[0], ExposureLevel::kStmt);
  const ExposureAssignment none = ExposureAssignment::FullEncryption(1, 1);
  EXPECT_EQ(none.query_levels[0], ExposureLevel::kBlind);
}

// ----- Step 1 (compulsory encryption). -----

TEST_F(MethodologyTest, Step1CapsCreditCardInsert) {
  const ExposureAssignment initial =
      ComputeInitialExposure(templates_, catalog(), policy_);
  // U2 inserts the card number as a parameter: capped to template.
  EXPECT_EQ(initial.update_levels[1], ExposureLevel::kTemplate);
  // U1 is untouched.
  EXPECT_EQ(initial.update_levels[0], ExposureLevel::kStmt);
  // No query touches the number: all start at view.
  for (ExposureLevel level : initial.query_levels) {
    EXPECT_EQ(level, ExposureLevel::kView);
  }
}

TEST_F(MethodologyTest, Step1CapsSensitiveResults) {
  CompulsoryPolicy policy;
  policy.sensitive_attributes.insert(
      templates::AttributeId{"customers", "cust_name"});
  const ExposureAssignment initial =
      ComputeInitialExposure(templates_, catalog(), policy);
  // Q3 preserves cust_name: results must be encrypted (<= stmt).
  EXPECT_EQ(initial.query_levels[2], ExposureLevel::kStmt);
}

TEST_F(MethodologyTest, Step1CapsSensitiveParameters) {
  CompulsoryPolicy policy;
  policy.sensitive_attributes.insert(
      templates::AttributeId{"credit_card", "zip_code"});
  const ExposureAssignment initial =
      ComputeInitialExposure(templates_, catalog(), policy);
  // Q3 compares zip_code against a parameter: parameters encrypted too.
  EXPECT_EQ(initial.query_levels[2], ExposureLevel::kTemplate);
}

TEST_F(MethodologyTest, MarkTableSensitiveCoversAllColumns) {
  CompulsoryPolicy policy;
  policy.MarkTableSensitive(catalog(), "credit_card");
  EXPECT_EQ(policy.sensitive_attributes.size(), 3u);
}

// ----- Step 2b (greedy exposure reduction) on the paper's example. -----

TEST_F(MethodologyTest, ReproducesSection32Example) {
  const SecurityReport report =
      RunMethodology(templates_, catalog(), policy_);
  // Step 1: E(U2) = template.
  EXPECT_EQ(report.initial.update_levels[1], ExposureLevel::kTemplate);
  // Step 2b: Q3 view -> template, Q2 view -> stmt, Q1 stays at view.
  EXPECT_EQ(report.final.query_levels[0], ExposureLevel::kView);
  EXPECT_EQ(report.final.query_levels[1], ExposureLevel::kStmt);
  EXPECT_EQ(report.final.query_levels[2], ExposureLevel::kTemplate);
  // U1 stays at stmt (its parameters help Q2's invalidation).
  EXPECT_EQ(report.final.update_levels[0], ExposureLevel::kStmt);
  EXPECT_EQ(report.final.update_levels[1], ExposureLevel::kTemplate);
}

TEST_F(MethodologyTest, ReductionNeverRaisesExposure) {
  const SecurityReport report =
      RunMethodology(templates_, catalog(), policy_);
  for (size_t j = 0; j < templates_.num_queries(); ++j) {
    EXPECT_LE(ExposureRank(report.final.query_levels[j]),
              ExposureRank(report.initial.query_levels[j]));
  }
  for (size_t i = 0; i < templates_.num_updates(); ++i) {
    EXPECT_LE(ExposureRank(report.final.update_levels[i]),
              ExposureRank(report.initial.update_levels[i]));
  }
}

TEST_F(MethodologyTest, ReducedAssignmentKeepsProbabilities) {
  const SecurityReport report =
      RunMethodology(templates_, catalog(), policy_);
  EXPECT_TRUE(SameInvalidationProbabilities(templates_, ipm_, report.initial,
                                            report.final));
}

TEST_F(MethodologyTest, GreedyIsIdempotent) {
  const ExposureAssignment initial =
      ComputeInitialExposure(templates_, catalog(), policy_);
  const ExposureAssignment once = ReduceExposure(templates_, ipm_, initial);
  const ExposureAssignment twice = ReduceExposure(templates_, ipm_, once);
  EXPECT_EQ(once, twice);
}

TEST_F(MethodologyTest, FurtherReductionWouldChangeProbabilities) {
  // Minimality of the outcome: lowering any single template one more step
  // changes some pair's canonical probability.
  const SecurityReport report =
      RunMethodology(templates_, catalog(), policy_);
  for (size_t j = 0; j < templates_.num_queries(); ++j) {
    if (report.final.query_levels[j] == ExposureLevel::kBlind) continue;
    ExposureAssignment lowered = report.final;
    lowered.query_levels[j] = static_cast<ExposureLevel>(
        ExposureRank(lowered.query_levels[j]) - 1);
    EXPECT_FALSE(SameInvalidationProbabilities(templates_, ipm_,
                                               report.final, lowered))
        << "query " << j;
  }
  for (size_t i = 0; i < templates_.num_updates(); ++i) {
    if (report.final.update_levels[i] == ExposureLevel::kBlind) continue;
    ExposureAssignment lowered = report.final;
    lowered.update_levels[i] = static_cast<ExposureLevel>(
        ExposureRank(lowered.update_levels[i]) - 1);
    EXPECT_FALSE(SameInvalidationProbabilities(templates_, ipm_,
                                               report.final, lowered))
        << "update " << i;
  }
}

TEST_F(MethodologyTest, FullyIgnorableAppReducesToTemplateLevel) {
  // If every pair is A=0, statements and results can be fully encrypted.
  // Templates themselves must stay exposed: by Property 1, a blind exposure
  // forces probability-one invalidation regardless of the IPM. Build such
  // an app: the only update touches toys, the only query reads customers.
  templates::TemplateSet set;
  ASSERT_TRUE(set.AddQuerySql(
                     "SELECT cust_name FROM customers WHERE cust_id = ?",
                     catalog())
                  .ok());
  ASSERT_TRUE(
      set.AddUpdateSql("DELETE FROM toys WHERE toy_id = ?", catalog()).ok());
  const IpmCharacterization ipm =
      IpmCharacterization::Compute(set, catalog());
  const ExposureAssignment reduced = ReduceExposure(
      set, ipm, ExposureAssignment::FullExposure(1, 1));
  EXPECT_EQ(reduced.query_levels[0], ExposureLevel::kTemplate);
  EXPECT_EQ(reduced.update_levels[0], ExposureLevel::kTemplate);
}

TEST_F(MethodologyTest, ReportCountsEncryptedResults) {
  const SecurityReport report =
      RunMethodology(templates_, catalog(), policy_);
  // Q2 and Q3 end below view.
  EXPECT_EQ(report.QueriesWithEncryptedResults(), 2u);
  EXPECT_EQ(report.QueriesWithEncryptedResultsInitial(), 0u);
  EXPECT_EQ(report.changes.size(), 5u);
  EXPECT_FALSE(report.ToString().empty());
}

}  // namespace
}  // namespace dssp::analysis
