#include <gtest/gtest.h>

#include "analysis/ipm.h"
#include "analysis/plan.h"
#include "engine/database.h"
#include "sql/parser.h"
#include "workloads/toystore.h"

namespace dssp::analysis {
namespace {

using templates::QueryTemplate;
using templates::UpdateTemplate;

class IpmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bundle = workloads::MakeToystore();
    ASSERT_TRUE(bundle.ok());
    db_ = std::move(bundle->db);
    templates_ = std::move(bundle->templates);
    ipm_ = IpmCharacterization::Compute(templates_, db_->catalog());
  }

  const catalog::Catalog& catalog() const { return db_->catalog(); }

  const PairCharacterization& Pair(int u, int q) {
    return ipm_.pair(u - 1, q - 1);
  }

  QueryTemplate Query(const std::string& sql) {
    auto tmpl = QueryTemplate::Create("Qx", sql, catalog());
    EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
    return std::move(tmpl).value();
  }

  UpdateTemplate Update(const std::string& sql) {
    auto tmpl = UpdateTemplate::Create("Ux", sql, catalog());
    EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
    return std::move(tmpl).value();
  }

  std::unique_ptr<engine::Database> db_;
  templates::TemplateSet templates_;
  IpmCharacterization ipm_{};
};

// ----- Table 4: the paper's IPM characterization of the toystore. -----

TEST_F(IpmTest, Table4Row1) {
  // U1 x Q1: A=1, B=A, C<B.
  EXPECT_FALSE(Pair(1, 1).a_is_zero);
  EXPECT_TRUE(Pair(1, 1).b_equals_a);
  EXPECT_FALSE(Pair(1, 1).c_equals_b);
  // U1 x Q2: A=1, B<A, C=B.
  EXPECT_FALSE(Pair(1, 2).a_is_zero);
  EXPECT_FALSE(Pair(1, 2).b_equals_a);
  EXPECT_TRUE(Pair(1, 2).c_equals_b);
  // U1 x Q3: A=0 (hence B=A, C=B).
  EXPECT_TRUE(Pair(1, 3).a_is_zero);
  EXPECT_TRUE(Pair(1, 3).b_equals_a);
  EXPECT_TRUE(Pair(1, 3).c_equals_b);
}

TEST_F(IpmTest, Table4Row2) {
  // U2 x Q1 and U2 x Q2: A=0.
  EXPECT_TRUE(Pair(2, 1).a_is_zero);
  EXPECT_TRUE(Pair(2, 2).a_is_zero);
  // U2 x Q3: A=1, B<A, C=B.
  EXPECT_FALSE(Pair(2, 3).a_is_zero);
  EXPECT_FALSE(Pair(2, 3).b_equals_a);
  EXPECT_TRUE(Pair(2, 3).c_equals_b);
}

TEST_F(IpmTest, Summary) {
  const IpmCharacterization::Summary summary = ipm_.Summarize();
  EXPECT_EQ(summary.total(), 6u);
  EXPECT_EQ(summary.all_zero, 3u);
  EXPECT_EQ(summary.b_eq_a_c_lt_b, 1u);  // U1/Q1.
  EXPECT_EQ(summary.b_lt_a_c_eq_b, 2u);  // U1/Q2, U2/Q3.
  EXPECT_EQ(summary.b_lt_a_c_lt_b, 0u);
  EXPECT_EQ(summary.b_eq_a_c_eq_b, 0u);
}

// ----- Section 4.5: integrity-constraint refinements. -----

TEST_F(IpmTest, PrimaryKeyConstraintMakesInsertionIrrelevant) {
  // Insert into toys vs "SELECT qty FROM toys WHERE toy_id = ?": a cached
  // non-empty instance pins an existing pk, so the insertion cannot match.
  const UpdateTemplate insert = Update(
      "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)");
  const QueryTemplate by_pk = Query("SELECT qty FROM toys WHERE toy_id = ?");
  EXPECT_TRUE(InsertionIrrelevantByConstraints(insert, by_pk, catalog()));
  const PairCharacterization pc = CharacterizePair(insert, by_pk, catalog());
  EXPECT_TRUE(pc.a_is_zero);

  // Not so for a non-key equality.
  const QueryTemplate by_name =
      Query("SELECT qty FROM toys WHERE toy_name = ?");
  EXPECT_FALSE(InsertionIrrelevantByConstraints(insert, by_name, catalog()));
  EXPECT_FALSE(CharacterizePair(insert, by_name, catalog()).a_is_zero);
}

TEST_F(IpmTest, ForeignKeyConstraintMakesInsertionIrrelevant) {
  // Paper Section 4.5: inserting a customer cannot affect Q3 because
  // credit_card.cid is a foreign key into customers — a fresh cust_id
  // cannot be referenced by any existing card.
  const UpdateTemplate insert = Update(
      "INSERT INTO customers (cust_id, cust_name) VALUES (?, ?)");
  const QueryTemplate* q3 = templates_.FindQuery("Q3");
  ASSERT_NE(q3, nullptr);
  EXPECT_TRUE(InsertionIrrelevantByConstraints(insert, *q3, catalog()));
  EXPECT_TRUE(CharacterizePair(insert, *q3, catalog()).a_is_zero);
}

TEST_F(IpmTest, FkRuleDoesNotApplyInWrongDirection) {
  // Inserting a credit_card CAN affect Q3 (cid joins an existing customer).
  const UpdateTemplate* u2 = templates_.FindUpdate("U2");
  const QueryTemplate* q3 = templates_.FindQuery("Q3");
  EXPECT_FALSE(InsertionIrrelevantByConstraints(*u2, *q3, catalog()));
}

TEST_F(IpmTest, ConstraintRefinementCanBeDisabled) {
  const UpdateTemplate insert = Update(
      "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)");
  const QueryTemplate by_pk = Query("SELECT qty FROM toys WHERE toy_id = ?");
  IpmOptions options;
  options.use_integrity_constraints = false;
  EXPECT_FALSE(CharacterizePair(insert, by_pk, catalog(), options).a_is_zero);
}

TEST_F(IpmTest, ConstraintsOnlyApplyToInsertions) {
  const UpdateTemplate del = Update("DELETE FROM toys WHERE toy_id = ?");
  const QueryTemplate by_pk = Query("SELECT qty FROM toys WHERE toy_id = ?");
  EXPECT_FALSE(InsertionIrrelevantByConstraints(del, by_pk, catalog()));
}

// ----- Section 4.3: B = A rules. -----

TEST_F(IpmTest, DeletionDisjointSelectionsGiveBEqualsA) {
  const UpdateTemplate del = Update("DELETE FROM toys WHERE toy_id = ?");
  const QueryTemplate by_name =
      Query("SELECT toy_id FROM toys WHERE toy_name = ?");
  const PairCharacterization pc = CharacterizePair(del, by_name, catalog());
  EXPECT_FALSE(pc.a_is_zero);
  EXPECT_TRUE(pc.b_equals_a);
}

TEST_F(IpmTest, InsertionWithParamPredicateGivesBLessThanA) {
  // Q has zip_code = ? over the inserted table: statement inspection can
  // compare the inserted zip against the instance constant, so B < A.
  const UpdateTemplate* u2 = templates_.FindUpdate("U2");
  const QueryTemplate* q3 = templates_.FindQuery("Q3");
  EXPECT_FALSE(CharacterizePair(*u2, *q3, catalog()).b_equals_a);
}

TEST_F(IpmTest, InsertionWithoutParamPredicateGivesBEqualsA) {
  // The query's only predicate on credit_card is the join; inserted values
  // cannot be tested against anything, so B = A.
  const UpdateTemplate* u2 = templates_.FindUpdate("U2");
  const QueryTemplate join_only = Query(
      "SELECT cust_name FROM customers, credit_card "
      "WHERE cust_id = cid AND cust_name = ?");
  const PairCharacterization pc =
      CharacterizePair(*u2, join_only, catalog());
  EXPECT_FALSE(pc.a_is_zero);
  EXPECT_TRUE(pc.b_equals_a);
}

// ----- Section 4.4: C = B rules. -----

TEST_F(IpmTest, InsertionIntoENQueryGivesCEqualsB) {
  const UpdateTemplate* u2 = templates_.FindUpdate("U2");
  const QueryTemplate* q3 = templates_.FindQuery("Q3");  // E and N.
  EXPECT_TRUE(CharacterizePair(*u2, *q3, catalog()).c_equals_b);
}

TEST_F(IpmTest, InsertionVsTopKQueryNoClaim) {
  const UpdateTemplate insert = Update(
      "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)");
  const QueryTemplate topk = Query(
      "SELECT toy_id FROM toys WHERE toy_name = ? ORDER BY qty DESC LIMIT 1");
  const PairCharacterization pc = CharacterizePair(insert, topk, catalog());
  EXPECT_FALSE(pc.a_is_zero);  // toy_name = ? defeats the pk rule.
  EXPECT_FALSE(pc.c_equals_b);
}

TEST_F(IpmTest, InsertionVsInequalityJoinNoClaim) {
  const UpdateTemplate insert = Update(
      "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)");
  const QueryTemplate ineq = Query(
      "SELECT t1.toy_id, t2.toy_id FROM toys AS t1, toys AS t2 "
      "WHERE t1.toy_name = ? AND t2.toy_name = ? AND t1.qty > t2.qty");
  EXPECT_FALSE(CharacterizePair(insert, ineq, catalog()).c_equals_b);
}

TEST_F(IpmTest, DeletionResultUnhelpfulGivesCEqualsB) {
  // Table 4: C12 = B12 because Q2 is result-unhelpful for U1.
  EXPECT_TRUE(Pair(1, 2).c_equals_b);
  // And C11 < B11 because Q1 preserves toy_id.
  EXPECT_FALSE(Pair(1, 1).c_equals_b);
}

TEST_F(IpmTest, ModificationResultUnhelpfulGivesCEqualsB) {
  const UpdateTemplate mod =
      Update("UPDATE toys SET qty = ? WHERE toy_id = ?");
  // Q preserves toy_name only; S(U) = {toy_id} not preserved -> H -> C=B.
  const QueryTemplate unhelpful =
      Query("SELECT toy_name FROM toys WHERE toy_name = ?");
  EXPECT_TRUE(CharacterizePair(mod, unhelpful, catalog()).c_equals_b);
  // Paper Section 4.4 counterexample shape: toy_id preserved -> no claim.
  const QueryTemplate helpful =
      Query("SELECT toy_id FROM toys WHERE qty > ?");
  EXPECT_FALSE(CharacterizePair(mod, helpful, catalog()).c_equals_b);
}

// ----- Conservative handling. -----

TEST_F(IpmTest, AssumptionViolationIsConservative) {
  const UpdateTemplate del = Update("DELETE FROM toys WHERE toy_id = ?");
  const QueryTemplate violating =
      Query("SELECT cust_name FROM customers");  // Empty predicate.
  const PairCharacterization pc = CharacterizePair(del, violating, catalog());
  // Even though the pair is ignorable, the paper's treatment recommends no
  // encryption for violating templates.
  EXPECT_FALSE(pc.a_is_zero);
  EXPECT_FALSE(pc.b_equals_a);
  EXPECT_FALSE(pc.c_equals_b);

  IpmOptions options;
  options.conservative_on_assumption_violations = false;
  EXPECT_TRUE(CharacterizePair(del, violating, catalog(), options).a_is_zero);
}

TEST_F(IpmTest, AggregatesBlockCEqualsBOnly) {
  const UpdateTemplate insert = Update(
      "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)");
  // The paper's Section 4.4(b) counterexample: MAX over an insertion.
  const QueryTemplate max_query =
      Query("SELECT MAX(qty) FROM toys WHERE toy_name = ?");
  const PairCharacterization pc =
      CharacterizePair(insert, max_query, catalog());
  EXPECT_FALSE(pc.c_equals_b);

  IpmOptions options;
  options.conservative_aggregates = false;
  EXPECT_TRUE(
      CharacterizePair(insert, max_query, catalog(), options).c_equals_b);
}

// ----- Canonical value classes (Property 1-3 of Section 2.3). -----

TEST_F(IpmTest, CanonicalRespectsGradient) {
  for (int u = 1; u <= 2; ++u) {
    for (int q = 1; q <= 3; ++q) {
      const PairCharacterization& pc = Pair(u, q);
      using VC = PairCharacterization::ValueClass;
      // Blind is always probability one (Property 1).
      EXPECT_EQ(pc.Canonical(IpmSymbol::kOne), VC::kOne);
      // A zero pair collapses A, B, C to zero.
      if (pc.a_is_zero) {
        EXPECT_EQ(pc.Canonical(IpmSymbol::kA), VC::kZero);
        EXPECT_EQ(pc.Canonical(IpmSymbol::kB), VC::kZero);
        EXPECT_EQ(pc.Canonical(IpmSymbol::kC), VC::kZero);
      }
      // B = A collapses the B cell to the A value.
      if (!pc.a_is_zero && pc.b_equals_a) {
        EXPECT_EQ(pc.Canonical(IpmSymbol::kB), pc.Canonical(IpmSymbol::kA));
      }
      if (!pc.a_is_zero && pc.c_equals_b) {
        EXPECT_EQ(pc.Canonical(IpmSymbol::kC), pc.Canonical(IpmSymbol::kB));
      }
    }
  }
}

TEST_F(IpmTest, RationaleIsPopulated) {
  for (int u = 1; u <= 2; ++u) {
    for (int q = 1; q <= 3; ++q) {
      EXPECT_FALSE(Pair(u, q).rationale.empty());
    }
  }
}

// ----- Section 4.5 edge cases: multi-hop FK chains, FK-like joins on
// non-PK unique columns, and self-referencing tables. Each positive claim
// (A=0) is cross-checked against the live engine: applying the insertion
// must leave the query's result unchanged. -----

class ConstraintEdgeCaseTest : public ::testing::Test {
 protected:
  void Exec(const std::string& sql) {
    auto effect = db_.ExecuteUpdate(sql::ParseOrDie(sql));
    ASSERT_TRUE(effect.ok()) << sql << ": " << effect.status().ToString();
  }

  QueryTemplate Query(const std::string& sql) {
    auto tmpl = QueryTemplate::Create("Qx", sql, db_.catalog());
    EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
    return std::move(tmpl).value();
  }

  UpdateTemplate Update(const std::string& sql) {
    auto tmpl = UpdateTemplate::Create("Ux", sql, db_.catalog());
    EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
    return std::move(tmpl).value();
  }

  // The brute-force oracle: does applying `update_sql` change the result of
  // the bound query? Restores nothing — call on a fresh fixture per claim.
  bool UpdateChangesResult(const std::string& update_sql,
                           const sql::Statement& query) {
    auto before = db_.ExecuteQuery(query);
    EXPECT_TRUE(before.ok());
    Exec(update_sql);
    auto after = db_.ExecuteQuery(query);
    EXPECT_TRUE(after.ok());
    return !before->SameResult(*after);
  }

  engine::Database db_;
};

TEST_F(ConstraintEdgeCaseTest, MultiHopForeignKeyChain) {
  // grand(g_id PK) <- mid(g_ref FK) <- leaf(m_ref FK): a three-table chain.
  ASSERT_TRUE(db_.CreateTable(catalog::TableSchema(
                     "grand", {{"g_id", catalog::ColumnType::kInt64}},
                     {"g_id"}))
                  .ok());
  ASSERT_TRUE(db_.CreateTable(catalog::TableSchema(
                     "mid",
                     {{"m_id", catalog::ColumnType::kInt64},
                      {"g_ref", catalog::ColumnType::kInt64}},
                     {"m_id"}, {{"g_ref", "grand", "g_id"}}))
                  .ok());
  ASSERT_TRUE(db_.CreateTable(catalog::TableSchema(
                     "leaf",
                     {{"l_id", catalog::ColumnType::kInt64},
                      {"m_ref", catalog::ColumnType::kInt64},
                      {"val", catalog::ColumnType::kInt64}},
                     {"l_id"}, {{"m_ref", "mid", "m_id"}}))
                  .ok());
  Exec("INSERT INTO grand (g_id) VALUES (1)");
  Exec("INSERT INTO mid (m_id, g_ref) VALUES (10, 1)");
  Exec("INSERT INTO leaf (l_id, m_ref, val) VALUES (100, 10, 7)");

  const QueryTemplate chain = Query(
      "SELECT l_id FROM grand, mid, leaf "
      "WHERE g_ref = g_id AND m_ref = m_id AND val = ?");

  // Every hop of the chain protects its referenced table: a fresh grand or
  // mid row cannot be referenced by any existing child row.
  const UpdateTemplate into_grand =
      Update("INSERT INTO grand (g_id) VALUES (?)");
  const UpdateTemplate into_mid =
      Update("INSERT INTO mid (m_id, g_ref) VALUES (?, ?)");
  EXPECT_TRUE(
      InsertionIrrelevantByConstraints(into_grand, chain, db_.catalog()));
  EXPECT_TRUE(
      InsertionIrrelevantByConstraints(into_mid, chain, db_.catalog()));
  // The compiled plan agrees with the template analysis.
  EXPECT_EQ(CompilePairPlan(into_grand, chain, db_.catalog()).kind,
            PlanKind::kNeverInvalidate);

  // Oracle: the claimed-irrelevant insertions indeed change nothing.
  const sql::Statement bound = chain.Bind({sql::Value(7)});
  EXPECT_FALSE(UpdateChangesResult("INSERT INTO grand (g_id) VALUES (2)",
                                   bound));
  EXPECT_FALSE(UpdateChangesResult(
      "INSERT INTO mid (m_id, g_ref) VALUES (11, 2)", bound));

  // The leaf is NOT protected: a new leaf row can join existing parents —
  // the analysis must stay conservative, and the oracle shows why.
  const UpdateTemplate into_leaf =
      Update("INSERT INTO leaf (l_id, m_ref, val) VALUES (?, ?, ?)");
  EXPECT_FALSE(
      InsertionIrrelevantByConstraints(into_leaf, chain, db_.catalog()));
  EXPECT_TRUE(UpdateChangesResult(
      "INSERT INTO leaf (l_id, m_ref, val) VALUES (101, 10, 7)", bound));
}

TEST_F(ConstraintEdgeCaseTest, JoinOnUniqueNonPkColumnIsNotProtected) {
  // products.code is UNIQUE but not the PK, and orders.ref_code carries no
  // declared FK (the catalog only admits FKs referencing primary keys).
  ASSERT_TRUE(db_.CreateTable(catalog::TableSchema(
                     "products",
                     {{"p_id", catalog::ColumnType::kInt64},
                      {"code", catalog::ColumnType::kInt64}},
                     {"p_id"}, {}, {"code"}))
                  .ok());
  ASSERT_TRUE(db_.CreateTable(catalog::TableSchema(
                     "orders",
                     {{"o_id", catalog::ColumnType::kInt64},
                      {"ref_code", catalog::ColumnType::kInt64}},
                     {"o_id"}))
                  .ok());
  Exec("INSERT INTO products (p_id, code) VALUES (1, 500)");
  Exec("INSERT INTO orders (o_id, ref_code) VALUES (1, 500)");
  Exec("INSERT INTO orders (o_id, ref_code) VALUES (2, 777)");

  // A parameter equality on the unique column IS protected (Section 4.5
  // case 1 extends from primary keys to any unique column).
  const UpdateTemplate insert_product =
      Update("INSERT INTO products (p_id, code) VALUES (?, ?)");
  const QueryTemplate by_code =
      Query("SELECT p_id FROM products WHERE code = ?");
  EXPECT_TRUE(InsertionIrrelevantByConstraints(insert_product, by_code,
                                               db_.catalog()));

  // But the JOIN on that column is not: without a declared FK, an existing
  // orders row may reference a not-yet-existing code, so a product
  // insertion can create the join partner. The analysis must not claim
  // A=0 — the oracle shows such a claim would serve stale results.
  const QueryTemplate join = Query(
      "SELECT o_id FROM products, orders WHERE ref_code = code");
  EXPECT_FALSE(InsertionIrrelevantByConstraints(insert_product, join,
                                                db_.catalog()));
  EXPECT_NE(CompilePairPlan(insert_product, join, db_.catalog()).kind,
            PlanKind::kNeverInvalidate);
  EXPECT_TRUE(UpdateChangesResult(
      "INSERT INTO products (p_id, code) VALUES (2, 777)", join.Bind({})));
}

TEST_F(ConstraintEdgeCaseTest, SelfReferencingTable) {
  // employees.manager_id is an FK into the same table.
  ASSERT_TRUE(db_.CreateTable(catalog::TableSchema(
                     "employees",
                     {{"id", catalog::ColumnType::kInt64},
                      {"manager_id", catalog::ColumnType::kInt64},
                      {"dept", catalog::ColumnType::kInt64}},
                     {"id"}, {{"manager_id", "employees", "id"}}))
                  .ok());
  Exec("INSERT INTO employees (id, manager_id, dept) VALUES (1, 1, 4)");
  Exec("INSERT INTO employees (id, manager_id, dept) VALUES (2, 1, 4)");

  const UpdateTemplate hire = Update(
      "INSERT INTO employees (id, manager_id, dept) VALUES (?, ?, ?)");

  // Self-join pinning the employee by PK: both slots are protected — slot e
  // by the unique equality, slot m because e.manager_id is a declared FK
  // into employees.id (referencing its own table must not confuse the FK
  // walk).
  const QueryTemplate manager_of = Query(
      "SELECT m.dept FROM employees e, employees m "
      "WHERE e.manager_id = m.id AND e.id = ?");
  EXPECT_TRUE(
      InsertionIrrelevantByConstraints(hire, manager_of, db_.catalog()));
  EXPECT_EQ(CompilePairPlan(hire, manager_of, db_.catalog()).kind,
            PlanKind::kNeverInvalidate);
  const sql::Statement bound = manager_of.Bind({sql::Value(int64_t{2})});
  EXPECT_FALSE(UpdateChangesResult(
      "INSERT INTO employees (id, manager_id, dept) VALUES (3, 1, 9)",
      bound));

  // Without the PK pin, the report slot is unprotected: a new hire with an
  // existing manager joins immediately. Conservative, and rightly so.
  const QueryTemplate reports = Query(
      "SELECT e.id FROM employees e, employees m "
      "WHERE e.manager_id = m.id AND m.dept = ?");
  EXPECT_FALSE(
      InsertionIrrelevantByConstraints(hire, reports, db_.catalog()));
  EXPECT_TRUE(UpdateChangesResult(
      "INSERT INTO employees (id, manager_id, dept) VALUES (4, 1, 9)",
      reports.Bind({sql::Value(int64_t{4})})));
}

}  // namespace
}  // namespace dssp::analysis
