// Cross-module property: every benchmark application template survives a
// print -> parse -> re-analyze round trip with identical derived analysis
// artifacts (attribute sets, classes, assumption flags, IPM relations).
// This pins down the parser/printer pair and guarantees the static analysis
// is a function of the SQL text, not of incidental AST shape.

#include <gtest/gtest.h>

#include "analysis/ipm.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "workloads/application.h"

namespace dssp::templates {
namespace {

class RoundTripTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    app_ = std::make_unique<service::ScalableApp>(
        GetParam(), &node_, crypto::KeyRing::FromPassphrase("rt"));
    workload_ = workloads::MakeApplication(GetParam());
    ASSERT_TRUE(workload_->Setup(*app_, 0.1, 2).ok());
  }

  service::DsspNode node_;
  std::unique_ptr<service::ScalableApp> app_;
  std::unique_ptr<workloads::Application> workload_;
};

TEST_P(RoundTripTest, QueryTemplatesRoundTrip) {
  const catalog::Catalog& catalog = app_->home().database().catalog();
  for (const QueryTemplate& q : app_->templates().queries()) {
    auto reparsed = QueryTemplate::Create(q.id(), q.ToSql(), catalog);
    ASSERT_TRUE(reparsed.ok()) << q.ToSql();
    EXPECT_EQ(reparsed->ToSql(), q.ToSql());
    EXPECT_EQ(reparsed->num_params(), q.num_params());
    EXPECT_EQ(reparsed->selection_attributes(), q.selection_attributes())
        << q.id();
    EXPECT_EQ(reparsed->preserved_attributes(), q.preserved_attributes())
        << q.id();
    EXPECT_EQ(reparsed->only_equality_joins(), q.only_equality_joins());
    EXPECT_EQ(reparsed->no_top_k(), q.no_top_k());
    EXPECT_EQ(reparsed->has_aggregation(), q.has_aggregation());
    EXPECT_EQ(reparsed->assumptions().ok(), q.assumptions().ok());
    EXPECT_EQ(reparsed->output_columns().size(), q.output_columns().size());
  }
}

TEST_P(RoundTripTest, UpdateTemplatesRoundTrip) {
  const catalog::Catalog& catalog = app_->home().database().catalog();
  for (const UpdateTemplate& u : app_->templates().updates()) {
    auto reparsed = UpdateTemplate::Create(u.id(), u.ToSql(), catalog);
    ASSERT_TRUE(reparsed.ok()) << u.ToSql();
    EXPECT_EQ(reparsed->ToSql(), u.ToSql());
    EXPECT_EQ(reparsed->update_class(), u.update_class());
    EXPECT_EQ(reparsed->table(), u.table());
    EXPECT_EQ(reparsed->selection_attributes(), u.selection_attributes());
    EXPECT_EQ(reparsed->modified_attributes(), u.modified_attributes());
    EXPECT_EQ(reparsed->assumptions().ok(), u.assumptions().ok());
  }
}

TEST_P(RoundTripTest, IpmIsAFunctionOfTheSqlText) {
  const catalog::Catalog& catalog = app_->home().database().catalog();
  // Rebuild the whole template set from printed SQL and compare every pair
  // characterization.
  TemplateSet rebuilt;
  for (const QueryTemplate& q : app_->templates().queries()) {
    auto t = QueryTemplate::Create(q.id(), q.ToSql(), catalog);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(rebuilt.AddQuery(std::move(*t)).ok());
  }
  for (const UpdateTemplate& u : app_->templates().updates()) {
    auto t = UpdateTemplate::Create(u.id(), u.ToSql(), catalog);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(rebuilt.AddUpdate(std::move(*t)).ok());
  }
  const auto original =
      analysis::IpmCharacterization::Compute(app_->templates(), catalog);
  const auto again = analysis::IpmCharacterization::Compute(rebuilt, catalog);
  ASSERT_EQ(original.num_updates(), again.num_updates());
  ASSERT_EQ(original.num_queries(), again.num_queries());
  for (size_t i = 0; i < original.num_updates(); ++i) {
    for (size_t j = 0; j < original.num_queries(); ++j) {
      EXPECT_EQ(original.pair(i, j).a_is_zero, again.pair(i, j).a_is_zero);
      EXPECT_EQ(original.pair(i, j).b_equals_a, again.pair(i, j).b_equals_a);
      EXPECT_EQ(original.pair(i, j).c_equals_b, again.pair(i, j).c_equals_b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, RoundTripTest,
                         ::testing::Values("toystore", "auction", "bboard",
                                           "bookstore"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dssp::templates
