// Tests for the fault-tolerant DSSP<->home wire path: channel fault
// injection, retry/timeout/backoff accounting, nonce-deduplicated updates,
// staleness-bounded degraded serving — and the acceptance soak, which pushes
// >= 100k mixed query/update frames through a lossy wire and requires every
// delivered result to match a no-fault oracle run with no update applied
// twice.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/schema.h"
#include "common/random.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/channel.h"
#include "dssp/home_server.h"
#include "dssp/node.h"
#include "dssp/protocol.h"
#include "dssp/retry.h"

namespace dssp::service {
namespace {

using sql::Value;

constexpr int64_t kKeySpace = 300;

// Minimal single-table tenant: Q1 reads one row, U1 overwrites it. Every
// update writes a globally unique value, so any lost, duplicated, or
// reordered update on the faulty wire shows up in a later query result.
std::unique_ptr<ScalableApp> MakeKvApp(const std::string& id,
                                       DsspNode* node) {
  auto app = std::make_unique<ScalableApp>(
      id, node, crypto::KeyRing::FromPassphrase("wire-secret"));
  engine::Database& db = app->home().database();
  EXPECT_TRUE(db.CreateTable(catalog::TableSchema(
                                 "kv",
                                 {{"id", catalog::ColumnType::kInt64},
                                  {"val", catalog::ColumnType::kInt64}},
                                 {"id"}))
                  .ok());
  for (int64_t i = 1; i <= kKeySpace; ++i) {
    EXPECT_TRUE(db.InsertRow("kv", {Value(i), Value(i * 13 % 101)}).ok());
  }
  EXPECT_TRUE(
      app->home().AddQueryTemplate("SELECT val FROM kv WHERE id = ?").ok());
  EXPECT_TRUE(
      app->home()
          .AddUpdateTemplate("UPDATE kv SET val = ? WHERE id = ?")
          .ok());
  EXPECT_TRUE(app->Finalize().ok());
  return app;
}

// ----- Channels. -----

TEST(DirectChannelTest, MatchesDispatchFrameExactly) {
  DsspNode node;
  auto app = MakeKvApp("direct", &node);
  const std::string frame = Encode(QueryRequest{
      app->home().statement_cipher().Encrypt("SELECT val FROM kv WHERE id = 7"),
      true});
  DirectChannel channel(app->home());
  const ChannelOutcome outcome = channel.RoundTrip(frame);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.home_deliveries, 1);
  EXPECT_EQ(outcome.delay_s, 0.0);
  EXPECT_EQ(outcome.response, DispatchFrame(app->home(), frame));
}

class FaultChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = MakeKvApp("faults", &node_);
    direct_ = std::make_unique<DirectChannel>(app_->home());
    sealed_query_ = Seal(Encode(QueryRequest{
        app_->home().statement_cipher().Encrypt(
            "SELECT val FROM kv WHERE id = 3"),
        true}));
  }

  DsspNode node_;
  std::unique_ptr<ScalableApp> app_;
  std::unique_ptr<DirectChannel> direct_;
  std::string sealed_query_;
};

TEST_F(FaultChannelTest, DropRequestNeverReachesHome) {
  FaultProfile profile;
  profile.drop_request = 1.0;
  FaultInjectingChannel channel(*direct_, profile, 1);
  const ChannelOutcome outcome = channel.RoundTrip(sealed_query_);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.home_deliveries, 0);
  EXPECT_EQ(app_->home().queries_executed(), 0u);
}

TEST_F(FaultChannelTest, DropResponseReachesHomeButNotClient) {
  FaultProfile profile;
  profile.drop_response = 1.0;
  FaultInjectingChannel channel(*direct_, profile, 1);
  const ChannelOutcome outcome = channel.RoundTrip(sealed_query_);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.home_deliveries, 1);  // The home did the work.
  EXPECT_EQ(app_->home().queries_executed(), 1u);
}

TEST_F(FaultChannelTest, CorruptRequestIsDetectedByTheSeal) {
  FaultProfile profile;
  profile.corrupt_request = 1.0;
  FaultInjectingChannel channel(*direct_, profile, 7);
  const ChannelOutcome outcome = channel.RoundTrip(sealed_query_);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_TRUE(outcome.request_corrupted);
  // The home saw a damaged envelope and answered with kCorruptFrame.
  auto inner = Unseal(outcome.response);
  ASSERT_TRUE(inner.ok());
  auto error = DecodeErrorResponse(*inner);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kCorruptFrame);
  EXPECT_EQ(app_->home().queries_executed(), 0u);
}

TEST_F(FaultChannelTest, CorruptResponseFailsUnseal) {
  FaultProfile profile;
  profile.corrupt_response = 1.0;
  FaultInjectingChannel channel(*direct_, profile, 7);
  const ChannelOutcome outcome = channel.RoundTrip(sealed_query_);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_TRUE(outcome.response_corrupted);
  EXPECT_FALSE(Unseal(outcome.response).ok());
}

TEST_F(FaultChannelTest, DuplicateDeliversTwiceAndDelaySpikes) {
  FaultProfile profile;
  profile.duplicate_request = 1.0;
  profile.delay_probability = 1.0;
  FaultInjectingChannel channel(*direct_, profile, 11);
  const ChannelOutcome outcome = channel.RoundTrip(sealed_query_);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.home_deliveries, 2);
  EXPECT_EQ(app_->home().queries_executed(), 2u);  // Queries: no dedup.
  EXPECT_GT(outcome.delay_s, 0.0);
}

TEST_F(FaultChannelTest, DuplicatedNoncedUpdateAppliesOnce) {
  FaultProfile profile;
  profile.duplicate_request = 1.0;
  FaultInjectingChannel channel(*direct_, profile, 13);
  const std::string update = Seal(Encode(UpdateRequest{
      app_->home().statement_cipher().Encrypt(
          "UPDATE kv SET val = 999 WHERE id = 3"),
      /*nonce=*/42}));
  const ChannelOutcome outcome = channel.RoundTrip(update);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.home_deliveries, 2);
  EXPECT_EQ(app_->home().updates_applied(), 1u);
  EXPECT_EQ(app_->home().duplicates_suppressed(), 1u);
  auto effect = UnwrapUpdateResponse(*Unseal(outcome.response));
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->rows_affected, 1u);
}

// ----- FaultProfile validation. -----

TEST(FaultProfileValidateTest, DefaultAndFullProfilesAreValid) {
  EXPECT_TRUE(FaultProfile{}.Validate().ok());
  FaultProfile full;
  full.drop_request = 1.0;
  full.drop_response = 1.0;
  full.corrupt_request = 1.0;
  full.corrupt_response = 1.0;
  full.duplicate_request = 1.0;
  full.delay_probability = 1.0;
  full.delay_mean_s = 0.0;
  full.max_corrupt_bytes = 0;
  EXPECT_TRUE(full.Validate().ok());
}

TEST(FaultProfileValidateTest, RejectsOutOfRangeProbabilities) {
  const auto probability_fields = {
      &FaultProfile::drop_request,    &FaultProfile::drop_response,
      &FaultProfile::corrupt_request, &FaultProfile::corrupt_response,
      &FaultProfile::duplicate_request, &FaultProfile::delay_probability,
  };
  for (auto field : probability_fields) {
    FaultProfile profile;
    profile.*field = -0.01;
    EXPECT_FALSE(profile.Validate().ok());
    profile.*field = 1.01;
    EXPECT_FALSE(profile.Validate().ok());
    profile.*field = std::nan("");
    EXPECT_FALSE(profile.Validate().ok());
    profile.*field = 0.5;
    EXPECT_TRUE(profile.Validate().ok());
  }
}

TEST(FaultProfileValidateTest, RejectsNegativeDelayAndCorruptBytes) {
  FaultProfile profile;
  profile.delay_mean_s = -0.001;
  EXPECT_FALSE(profile.Validate().ok());
  profile.delay_mean_s = std::nan("");
  EXPECT_FALSE(profile.Validate().ok());
  profile = FaultProfile{};
  profile.max_corrupt_bytes = -1;
  EXPECT_FALSE(profile.Validate().ok());
}

TEST(FaultProfileValidateTest, MessageNamesTheOffendingField) {
  FaultProfile profile;
  profile.corrupt_response = 2.0;
  const Status status = profile.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("corrupt_response"), std::string::npos)
      << status.message();
}

using FaultProfileValidateDeathTest = FaultChannelTest;

TEST_F(FaultProfileValidateDeathTest, ChannelConstructionChecksTheProfile) {
  FaultProfile bad;
  bad.drop_request = 7.0;
  EXPECT_DEATH(FaultInjectingChannel(*direct_, bad, 1), "drop_request");
}

// ----- RetryingClient against a scripted channel. -----

// Deterministic wire: plays back a per-attempt script, then delivers.
class ScriptedChannel : public Channel {
 public:
  enum class Action { kDeliver, kDropRequest, kDropResponse, kGarble };

  ScriptedChannel(HomeServer& home, std::vector<Action> script)
      : home_(home), script_(std::move(script)) {}

  ChannelOutcome RoundTrip(std::string_view request_frame) override {
    const Action action =
        calls_ < script_.size() ? script_[calls_] : Action::kDeliver;
    ++calls_;
    ChannelOutcome outcome;
    if (action == Action::kDropRequest) return outcome;
    outcome.home_deliveries = 1;
    std::string response = DispatchFrame(home_, request_frame);
    if (action == Action::kDropResponse) return outcome;
    outcome.delivered = true;
    if (action == Action::kGarble) response[response.size() / 2] ^= 0x20;
    outcome.response = std::move(response);
    return outcome;
  }

  size_t calls() const { return calls_; }

 private:
  HomeServer& home_;
  std::vector<Action> script_;
  size_t calls_ = 0;
};

class RetryClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = MakeKvApp("retry", &node_);
    query_frame_ = Encode(QueryRequest{
        app_->home().statement_cipher().Encrypt(
            "SELECT val FROM kv WHERE id = 5"),
        true});
  }

  RetryPolicy TestPolicy() {
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.attempt_timeout_s = 0.5;
    policy.initial_backoff_s = 0.05;
    policy.backoff_multiplier = 2.0;
    policy.max_backoff_s = 1.0;
    policy.jitter_fraction = 0.2;
    policy.deadline_s = 10.0;
    return policy;
  }

  DsspNode node_;
  std::unique_ptr<ScalableApp> app_;
  std::string query_frame_;
};

TEST_F(RetryClientTest, FirstTrySucceedsWithNoRetryCost) {
  ScriptedChannel channel(app_->home(), {});
  RetryingClient client(&channel, TestPolicy(), 1);
  WireStats ws;
  auto inner = client.Call(query_frame_, &ws);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(PeekType(*inner), MessageType::kQueryResponse);
  EXPECT_EQ(ws.attempts, 1u);
  EXPECT_EQ(ws.retries, 0u);
  EXPECT_EQ(ws.timeouts, 0u);
  EXPECT_EQ(ws.delay_s, 0.0);
  EXPECT_EQ(ws.request_bytes, Seal(query_frame_).size());
}

TEST_F(RetryClientTest, RecoversFromDropsAndChargesTimeoutsPlusBackoff) {
  using A = ScriptedChannel::Action;
  ScriptedChannel channel(app_->home(),
                          {A::kDropRequest, A::kDropResponse});
  RetryingClient client(&channel, TestPolicy(), 2);
  WireStats ws;
  auto inner = client.Call(query_frame_, &ws);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(ws.attempts, 3u);
  EXPECT_EQ(ws.retries, 2u);
  EXPECT_EQ(ws.timeouts, 2u);
  // Two attempt timeouts plus two jittered backoffs (0.05 and 0.10 +/-20%).
  EXPECT_GE(ws.delay_s, 2 * 0.5 + 0.8 * (0.05 + 0.10));
  EXPECT_LE(ws.delay_s, 2 * 0.5 + 1.2 * (0.05 + 0.10));
  EXPECT_EQ(ws.request_bytes, 3 * Seal(query_frame_).size());
}

TEST_F(RetryClientTest, RecoversFromCorruptionWithoutTimeoutCharge) {
  using A = ScriptedChannel::Action;
  ScriptedChannel channel(app_->home(), {A::kGarble});
  RetryingClient client(&channel, TestPolicy(), 3);
  WireStats ws;
  auto inner = client.Call(query_frame_, &ws);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(ws.attempts, 2u);
  EXPECT_EQ(ws.corrupt_frames_dropped, 1u);
  EXPECT_EQ(ws.timeouts, 0u);
}

TEST_F(RetryClientTest, ExhaustionReturnsUnavailable) {
  using A = ScriptedChannel::Action;
  ScriptedChannel channel(
      app_->home(),
      std::vector<A>(8, A::kDropRequest));  // More drops than attempts.
  RetryingClient client(&channel, TestPolicy(), 4);
  WireStats ws;
  auto inner = client.Call(query_frame_, &ws);
  ASSERT_FALSE(inner.ok());
  EXPECT_EQ(inner.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(ws.attempts, 4u);  // max_attempts, no more.
  EXPECT_EQ(channel.calls(), 4u);
}

TEST_F(RetryClientTest, DeadlineCapsTheRetryLoop) {
  using A = ScriptedChannel::Action;
  ScriptedChannel channel(app_->home(), std::vector<A>(8, A::kDropRequest));
  RetryPolicy policy = TestPolicy();
  policy.max_attempts = 8;
  policy.deadline_s = 1.2;  // Covers two 0.5s timeouts, not a third round.
  RetryingClient client(&channel, policy, 5);
  WireStats ws;
  auto inner = client.Call(query_frame_, &ws);
  ASSERT_FALSE(inner.ok());
  EXPECT_EQ(inner.status().code(), StatusCode::kDeadlineExceeded);
  // The deadline fires well before the attempt budget runs out. (delay_s
  // may exceed the deadline by up to one attempt timeout: the check runs
  // before each retry, and the last attempt's loss is still charged.)
  EXPECT_GE(ws.attempts, 2u);
  EXPECT_LT(ws.attempts, 8u);
}

TEST_F(RetryClientTest, ApplicationErrorsAreNotRetried) {
  // A deterministic home-side error (unparseable statement) must surface on
  // the first attempt: retrying it would just repeat the failure.
  ScriptedChannel channel(app_->home(), {});
  RetryingClient client(&channel, TestPolicy(), 6);
  const std::string bad = Encode(QueryRequest{
      app_->home().statement_cipher().Encrypt("NOT EVEN SQL"), true});
  WireStats ws;
  auto inner = client.Call(bad, &ws);
  ASSERT_TRUE(inner.ok());  // The *frame* arrived fine...
  EXPECT_EQ(PeekType(*inner), MessageType::kError);  // ...carrying the error.
  EXPECT_EQ(ws.attempts, 1u);
  EXPECT_EQ(channel.calls(), 1u);
}

// ----- Hardened app path: wire counters and degraded mode. -----

TEST(HardenedAppTest, PerfectWireIsInvisibleToResults) {
  DsspNode node;
  auto plain = MakeKvApp("plain", &node);
  auto hardened = MakeKvApp("hard", &node);
  hardened->SetWirePolicy(WirePolicy{});
  for (int64_t id = 1; id <= 20; ++id) {
    auto a = plain->Query("Q1", {Value(id)});
    auto b = hardened->Query("Q1", {Value(id)});
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->rows(), b->rows());
  }
  auto ua = plain->Update("U1", {Value(7), Value(4)});
  auto ub = hardened->Update("U1", {Value(7), Value(4)});
  ASSERT_TRUE(ua.ok() && ub.ok());
  EXPECT_EQ(ua->rows_affected, ub->rows_affected);
  const WireCounters wc = hardened->wire_counters();
  EXPECT_EQ(wc.retries, 0u);
  EXPECT_EQ(wc.timeouts, 0u);
  EXPECT_EQ(wc.failures, 0u);
  EXPECT_GT(wc.attempts, 0u);
}

TEST(HardenedAppTest, LossyWireStillYieldsCorrectResults) {
  DsspNode node;
  auto app = MakeKvApp("lossy", &node);
  auto direct = std::make_unique<DirectChannel>(app->home());
  FaultProfile profile;
  profile.drop_request = 0.2;
  profile.drop_response = 0.2;
  profile.corrupt_request = 0.1;
  profile.corrupt_response = 0.1;
  profile.duplicate_request = 0.1;
  WirePolicy policy;
  policy.retry.max_attempts = 40;
  policy.retry.deadline_s = 0;  // Unlimited: retries always win eventually.
  policy.retry.attempt_timeout_s = 0.01;
  policy.retry.initial_backoff_s = 0.001;
  policy.retry.max_backoff_s = 0.01;
  app->SetWirePolicy(policy);
  // `direct` stays alive on this stack frame for the app's whole lifetime.
  app->SetChannel(std::make_unique<FaultInjectingChannel>(
      *direct, profile, /*seed=*/99));

  uint64_t updates_issued = 0;
  for (int round = 0; round < 200; ++round) {
    const int64_t id = round % 25 + 1;
    if (round % 4 == 3) {
      AccessStats stats;
      auto effect = app->Update("U1", {Value(round), Value(id)}, &stats);
      ASSERT_TRUE(effect.ok()) << round;
      EXPECT_EQ(effect->rows_affected, 1u);
      ++updates_issued;
    } else {
      auto result = app->Query("Q1", {Value(id)});
      ASSERT_TRUE(result.ok()) << round;
      ASSERT_EQ(result->num_rows(), 1u);
    }
  }
  // Exactly one application per issued update, despite drops/duplicates.
  EXPECT_EQ(app->home().updates_applied(), updates_issued);
  const WireCounters wc = app->wire_counters();
  EXPECT_GT(wc.retries, 0u);
  EXPECT_GT(wc.timeouts, 0u);
  EXPECT_EQ(wc.failures, 0u);
}

class StaleServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = MakeKvApp("stale", &node_);
    node_.SetStaleRetention("stale", 64);
    WirePolicy policy;
    policy.retry.max_attempts = 2;
    policy.retry.attempt_timeout_s = 0.01;
    policy.retry.initial_backoff_s = 0.001;
    policy.stale_serve_bound = 1;
    app_->SetWirePolicy(policy);
  }

  void MakeHomeUnreachable() {
    direct_ = std::make_unique<DirectChannel>(app_->home());
    FaultProfile outage;
    outage.drop_request = 1.0;
    app_->SetChannel(std::make_unique<FaultInjectingChannel>(
        *direct_, outage, /*seed=*/5));
  }

  DsspNode node_;
  std::unique_ptr<ScalableApp> app_;
  std::unique_ptr<DirectChannel> direct_;
};

TEST_F(StaleServeTest, ServesInvalidatedEntryWithinBoundDuringOutage) {
  // Cache id=9, invalidate it with an update, then cut the wire.
  auto before = app_->Query("Q1", {Value(9)});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(app_->Update("U1", {Value(1234), Value(9)}).ok());
  MakeHomeUnreachable();

  AccessStats stats;
  auto degraded = app_->Query("Q1", {Value(9)}, &stats);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(stats.served_stale);
  EXPECT_FALSE(stats.cache_hit);
  // The stale copy predates the update: it shows the *old* value.
  EXPECT_EQ(degraded->rows(), before->rows());
  EXPECT_EQ(app_->wire_counters().stale_serves, 1u);
  EXPECT_EQ(node_.stats("stale").stale_hits, 1u);

  // A key never cached has no stale copy: the outage surfaces.
  auto missing = app_->Query("Q1", {Value(10)});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kUnavailable);
}

TEST_F(StaleServeTest, EntriesPastTheStalenessBoundAreNotServed) {
  ASSERT_TRUE(app_->Query("Q1", {Value(9)}).ok());
  // Two updates: the retained entry is now 2 observed updates behind,
  // outside stale_serve_bound = 1.
  ASSERT_TRUE(app_->Update("U1", {Value(1), Value(9)}).ok());
  ASSERT_TRUE(app_->Update("U1", {Value(2), Value(8)}).ok());
  MakeHomeUnreachable();
  auto degraded = app_->Query("Q1", {Value(9)});
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(app_->wire_counters().stale_serves, 0u);
}

TEST_F(StaleServeTest, ZeroBoundDisablesDegradedMode) {
  WirePolicy policy;
  policy.retry.max_attempts = 2;
  policy.retry.attempt_timeout_s = 0.01;
  policy.stale_serve_bound = 0;
  app_->SetWirePolicy(policy);
  ASSERT_TRUE(app_->Query("Q1", {Value(9)}).ok());
  ASSERT_TRUE(app_->Update("U1", {Value(5), Value(9)}).ok());
  MakeHomeUnreachable();
  auto degraded = app_->Query("Q1", {Value(9)});
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.status().code(), StatusCode::kUnavailable);
}

// ----- Concurrency: the hardened path under real threads. -----
// (Run under -DDSSP_TSAN=ON; queries are engine-read-only, nonce'd updates
// serialize in the home server's dedup section, so phases don't race the
// single-writer engine.)

TEST(WireConcurrencyTest, ParallelQueriesAndNoncedUpdatesStayConsistent) {
  DsspNode node;
  auto app = MakeKvApp("mt", &node);
  node.SetStaleRetention("mt", 32);
  auto direct = std::make_unique<DirectChannel>(app->home());
  FaultProfile profile;
  profile.drop_request = 0.1;
  profile.drop_response = 0.1;
  profile.corrupt_request = 0.05;
  profile.corrupt_response = 0.05;
  profile.duplicate_request = 0.1;
  profile.delay_probability = 0.05;
  WirePolicy policy;
  policy.retry.max_attempts = 50;
  policy.retry.deadline_s = 0;
  policy.retry.attempt_timeout_s = 0.01;
  policy.retry.initial_backoff_s = 0.001;
  policy.retry.max_backoff_s = 0.01;
  app->SetWirePolicy(policy);
  app->SetChannel(
      std::make_unique<FaultInjectingChannel>(*direct, profile, 17));

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 400;
  constexpr int kUpdatesPerThread = 150;

  // Phase 1: concurrent queries over the lossy wire.
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kQueriesPerThread; ++i) {
          const int64_t id = (i * 7 + t * 13) % kKeySpace + 1;
          auto result = app->Query("Q1", {Value(id)});
          ASSERT_TRUE(result.ok());
          ASSERT_EQ(result->num_rows(), 1u);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Phase 2: concurrent nonce'd updates; dedup must keep applications
  // exactly one per issued op even when duplicates race retries.
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kUpdatesPerThread; ++i) {
          const int64_t id = (i * 3 + t * 29) % kKeySpace + 1;
          auto effect =
              app->Update("U1", {Value(t * 100000 + i), Value(id)});
          ASSERT_TRUE(effect.ok());
          EXPECT_EQ(effect->rows_affected, 1u);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  EXPECT_EQ(app->home().updates_applied(),
            static_cast<uint64_t>(kThreads) * kUpdatesPerThread);
  const WireCounters wc = app->wire_counters();
  EXPECT_EQ(wc.failures, 0u);
  EXPECT_GT(wc.attempts,
            static_cast<uint64_t>(kThreads) *
                (kQueriesPerThread + kUpdatesPerThread) / 2);
}

// ----- The acceptance soak: >= 100k frames vs. a no-fault oracle. -----

TEST(WireSoakTest, LossyWireMatchesOracleOverHundredThousandFrames) {
  size_t ops = 60000;
  if (const char* env = std::getenv("DSSP_SOAK_OPS")) {
    ops = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    if (ops == 0) ops = 60000;
  }

  DsspNode oracle_node;
  DsspNode faulty_node;
  auto oracle = MakeKvApp("soak", &oracle_node);  // Legacy perfect wire.
  auto faulty = MakeKvApp("soak", &faulty_node);
  // A small cache keeps the miss rate high so the op stream actually
  // exercises the wire instead of the cache.
  oracle_node.SetCacheCapacity("soak", 32);
  faulty_node.SetCacheCapacity("soak", 32);

  auto direct = std::make_unique<DirectChannel>(faulty->home());
  FaultProfile profile;
  profile.drop_request = 0.03;
  profile.drop_response = 0.03;
  profile.corrupt_request = 0.02;
  profile.corrupt_response = 0.02;
  profile.duplicate_request = 0.03;
  profile.delay_probability = 0.02;
  WirePolicy policy;
  policy.retry.max_attempts = 40;  // Per-attempt failure ~0.1: never fails.
  policy.retry.deadline_s = 0;
  policy.retry.attempt_timeout_s = 0.01;
  policy.retry.initial_backoff_s = 0.001;
  policy.retry.max_backoff_s = 0.01;
  policy.stale_serve_bound = 0;  // Stale serves would diverge from oracle.
  faulty->SetWirePolicy(policy);
  faulty->SetChannel(
      std::make_unique<FaultInjectingChannel>(*direct, profile, 0xFA11));

  Rng rng(20060615);  // One op stream, replayed against both stacks.
  uint64_t updates_issued = 0;
  int64_t next_val = 1;
  for (size_t op = 0; op < ops; ++op) {
    const int64_t id = rng.NextInt(1, kKeySpace);
    if (rng.NextBool(0.2)) {
      const std::vector<Value> params = {Value(next_val++), Value(id)};
      auto a = oracle->Update("U1", params);
      auto b = faulty->Update("U1", params);
      ASSERT_TRUE(a.ok()) << "oracle update failed at op " << op;
      ASSERT_TRUE(b.ok()) << "faulty update failed at op " << op;
      ASSERT_EQ(a->rows_affected, b->rows_affected) << "op " << op;
      ++updates_issued;
    } else {
      const std::vector<Value> params = {Value(id)};
      auto a = oracle->Query("Q1", params);
      auto b = faulty->Query("Q1", params);
      ASSERT_TRUE(a.ok()) << "oracle query failed at op " << op;
      ASSERT_TRUE(b.ok()) << "faulty query failed at op " << op;
      // The acceptance bar: every delivered result identical to the
      // no-fault oracle.
      ASSERT_EQ(a->rows(), b->rows()) << "result divergence at op " << op;
    }
  }

  // At-most-once: one application per issued update on BOTH stacks, with
  // the faulty side having actually suppressed wire-level duplicates.
  EXPECT_EQ(oracle->home().updates_applied(), updates_issued);
  EXPECT_EQ(faulty->home().updates_applied(), updates_issued);
  EXPECT_GT(faulty->home().duplicates_suppressed(), 0u);
  EXPECT_EQ(oracle->home().duplicates_suppressed(), 0u);

  const WireCounters wc = faulty->wire_counters();
  EXPECT_EQ(wc.failures, 0u);
  EXPECT_GT(wc.retries, 0u);
  EXPECT_GT(wc.timeouts, 0u);
  EXPECT_GT(wc.corrupt_frames_dropped, 0u);

  // Frame volume: requests put on the wire plus responses that came back.
  const uint64_t frames = wc.attempts + (wc.attempts - wc.timeouts);
  if (ops >= 60000) {
    EXPECT_GE(frames, 100000u) << "soak too small to meet the acceptance bar";
  } else {
    EXPECT_GE(frames, ops);  // Reduced runs still hammer the wire.
  }
}

}  // namespace
}  // namespace dssp::service
