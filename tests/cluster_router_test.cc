// Cluster subsystem tests: membership health transitions, invalidation-bus
// queueing/dedup/replay, and the router's replica-fallback + drain-gated
// rejoin behavior, including a multi-threaded soak (run under -DDSSP_TSAN=ON).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/schema.h"
#include "cluster/bus.h"
#include "cluster/membership.h"
#include "cluster/router.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/protocol.h"

namespace dssp::cluster {
namespace {

using service::Seal;
using sql::Value;

constexpr int64_t kKeySpace = 200;

// The wire-fault tests' kv tenant, rebased onto a cluster backend.
std::unique_ptr<service::ScalableApp> MakeKvApp(const std::string& id,
                                                service::CacheBackend* dssp) {
  auto app = std::make_unique<service::ScalableApp>(
      id, dssp, crypto::KeyRing::FromPassphrase("cluster-secret"));
  engine::Database& db = app->home().database();
  EXPECT_TRUE(db.CreateTable(catalog::TableSchema(
                                 "kv",
                                 {{"id", catalog::ColumnType::kInt64},
                                  {"val", catalog::ColumnType::kInt64}},
                                 {"id"}))
                  .ok());
  for (int64_t i = 1; i <= kKeySpace; ++i) {
    EXPECT_TRUE(db.InsertRow("kv", {Value(i), Value(i * 13 % 101)}).ok());
  }
  EXPECT_TRUE(
      app->home().AddQueryTemplate("SELECT val FROM kv WHERE id = ?").ok());
  EXPECT_TRUE(app->home()
                  .AddUpdateTemplate("UPDATE kv SET val = ? WHERE id = ?")
                  .ok());
  EXPECT_TRUE(app->Finalize().ok());
  return app;
}

// ----- MembershipTable. -----

TEST(MembershipTest, FailureStreaksDriveSuspectThenDown) {
  MembershipTable table({.suspect_after = 2, .down_after = 4});
  table.AddNode(0);
  const uint64_t epoch0 = table.epoch();

  EXPECT_FALSE(table.ReportFailure(0));  // 1 failure: still alive.
  EXPECT_EQ(table.health(0), NodeHealth::kAlive);
  EXPECT_TRUE(table.ReportFailure(0));  // 2: suspect.
  EXPECT_EQ(table.health(0), NodeHealth::kSuspect);
  EXPECT_TRUE(table.Servable(0));  // Suspect still serves.
  EXPECT_FALSE(table.ReportFailure(0));  // 3: still suspect.
  EXPECT_TRUE(table.ReportFailure(0));  // 4: down.
  EXPECT_EQ(table.health(0), NodeHealth::kDown);
  EXPECT_FALSE(table.Servable(0));
  EXPECT_GT(table.epoch(), epoch0);

  const MemberCounters counters = table.counters(0);
  EXPECT_EQ(counters.suspect_transitions, 1u);
  EXPECT_EQ(counters.down_transitions, 1u);
}

TEST(MembershipTest, SuccessRecoversSuspectButNeverDown) {
  MembershipTable table({.suspect_after = 1, .down_after = 3});
  table.AddNode(0);
  table.AddNode(1);

  ASSERT_TRUE(table.ReportFailure(0));
  ASSERT_EQ(table.health(0), NodeHealth::kSuspect);
  EXPECT_TRUE(table.ReportSuccess(0));
  EXPECT_EQ(table.health(0), NodeHealth::kAlive);
  // The streak was cleared: it takes a full streak to suspect again.
  EXPECT_TRUE(table.ReportFailure(0));

  for (int i = 0; i < 3; ++i) table.ReportFailure(1);
  ASSERT_EQ(table.health(1), NodeHealth::kDown);
  EXPECT_FALSE(table.ReportSuccess(1));  // Down is sticky...
  EXPECT_EQ(table.health(1), NodeHealth::kDown);
  EXPECT_FALSE(table.ReportFailure(1));  // ...and further failures no-op.
  EXPECT_TRUE(table.Rejoin(1));  // ...until an explicit rejoin.
  EXPECT_EQ(table.health(1), NodeHealth::kAlive);
  EXPECT_FALSE(table.Rejoin(1));  // Rejoining an alive node is a no-op.
  EXPECT_EQ(table.counters(1).rejoins, 1u);
}

TEST(MembershipTest, ServableNodesExcludesOnlyDownMembers) {
  MembershipTable table({.suspect_after = 1, .down_after = 2});
  for (int i = 0; i < 3; ++i) table.AddNode(i);
  table.ReportFailure(1);  // Suspect.
  table.ReportFailure(2);
  table.ReportFailure(2);  // Down.
  EXPECT_EQ(table.ServableNodes(), (std::vector<int>{0, 1}));
}

// ----- NodeChannel + InvalidationBus. -----

service::InvalidateRequest MakeInvalidate(const std::string& app_id,
                                          uint64_t nonce) {
  service::InvalidateRequest request;
  request.app_id = app_id;
  request.level = 0;  // Blind: clears the whole app cache.
  request.nonce = nonce;
  return request;
}

TEST(NodeChannelTest, DuplicateNonceAppliesOnce) {
  service::DsspNode node;
  NodeChannel channel(node);
  const std::string frame = Seal(Encode(MakeInvalidate("app", 7)));

  auto first = channel.RoundTrip(frame);
  ASSERT_TRUE(first.delivered);
  auto second = channel.RoundTrip(frame);
  ASSERT_TRUE(second.delivered);
  EXPECT_EQ(first.response, second.response);
  EXPECT_EQ(channel.notices_applied(), 1u);
  EXPECT_EQ(channel.duplicates_suppressed(), 1u);
}

TEST(NodeChannelTest, KilledChannelDropsFramesUntilRevive) {
  service::DsspNode node;
  NodeChannel channel(node);
  channel.Kill();
  const std::string frame = Seal(Encode(MakeInvalidate("app", 1)));
  EXPECT_FALSE(channel.RoundTrip(frame).delivered);
  EXPECT_EQ(channel.notices_applied(), 0u);
  channel.Revive();
  EXPECT_TRUE(channel.RoundTrip(frame).delivered);
  EXPECT_EQ(channel.notices_applied(), 1u);
}

TEST(NodeChannelTest, MalformedFramesAnswerWithSealedErrors) {
  service::DsspNode node;
  NodeChannel channel(node);
  // Not sealed at all.
  auto outcome = channel.RoundTrip("junk");
  ASSERT_TRUE(outcome.delivered);
  auto inner = service::Unseal(outcome.response);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(service::PeekType(*inner), service::MessageType::kError);
  // Sealed, but a zero nonce is invalid on the wire.
  outcome = channel.RoundTrip(Seal(Encode(MakeInvalidate("app", 0))));
  ASSERT_TRUE(outcome.delivered);
  inner = service::Unseal(outcome.response);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(service::PeekType(*inner), service::MessageType::kError);
  EXPECT_EQ(channel.notices_applied(), 0u);
}

TEST(InvalidationBusTest, QueuesForDeadMemberAndReplaysInOrderOnFlush) {
  service::DsspNode alive_node, dead_node;
  NodeChannel alive_channel(alive_node), dead_channel(dead_node);
  InvalidationBus bus;
  bus.AddMember(0, &alive_channel);
  bus.AddMember(1, &dead_channel);
  dead_channel.Kill();

  service::UpdateNotice notice;  // Blind notice; mechanics are the point.
  for (int i = 0; i < 5; ++i) {
    const PublishOutcome outcome = bus.Publish("app", notice);
    EXPECT_EQ(outcome.delivered_members, 1);
    EXPECT_EQ(outcome.failed_members, 1);
  }
  EXPECT_EQ(bus.Pending(0), 0u);
  EXPECT_EQ(bus.Pending(1), 5u);
  EXPECT_EQ(alive_channel.notices_applied(), 5u);

  dead_channel.Revive();
  auto replayed = bus.Flush(1);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 5u);
  EXPECT_EQ(bus.Pending(1), 0u);
  EXPECT_EQ(dead_channel.notices_applied(), 5u);

  const BusStats stats = bus.stats();
  EXPECT_EQ(stats.published, 5u);
  EXPECT_EQ(stats.delivered_notices, 10u);
  // The five frames that bounced off the dead wire were transient, not
  // dropped: they stayed queued and replayed at the Flush above.
  EXPECT_EQ(stats.unreachable_failures, 5u);
  EXPECT_EQ(stats.dropped_frames, 0u);
}

TEST(InvalidationBusTest, DeferredMemberQueuesWithoutWireAttempts) {
  service::DsspNode node;
  NodeChannel channel(node);
  channel.Kill();  // Any wire attempt would fail (and cost retries).
  InvalidationBus bus;
  bus.AddMember(0, &channel);
  bus.SetDeferred(0, true);

  service::UpdateNotice notice;
  const PublishOutcome outcome = bus.Publish("app", notice);
  EXPECT_EQ(outcome.deferred_members, 1);
  EXPECT_EQ(outcome.failed_members, 0);
  EXPECT_EQ(bus.stats().wire_retries, 0u);  // Never touched the wire.
  EXPECT_EQ(bus.Pending(0), 1u);
}

TEST(InvalidationBusTest, LagBoundDefersDeliveryUntilExceeded) {
  service::DsspNode node;
  NodeChannel channel(node);
  BusOptions options;
  options.bus_lag = 2;
  InvalidationBus bus(options);
  bus.AddMember(0, &channel);

  service::UpdateNotice notice;
  bus.Publish("app", notice);
  bus.Publish("app", notice);
  EXPECT_EQ(bus.Pending(0), 2u);  // Within the bound: lazily queued.
  EXPECT_EQ(channel.notices_applied(), 0u);
  bus.Publish("app", notice);  // Exceeds the bound: drains everything.
  EXPECT_EQ(bus.Pending(0), 0u);
  EXPECT_EQ(channel.notices_applied(), 3u);
}

// ----- ClusterRouter. -----

TEST(ClusterRouterTest, StoresReplicateToTheReplicaSet) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.replication = 2;
  ClusterRouter router(options);
  auto app = MakeKvApp("kv", &router);

  std::set<std::string> queried;
  for (int64_t id = 1; id <= 40; ++id) {
    ASSERT_TRUE(app->Query("Q1", {Value(id)}).ok());
    queried.insert(std::to_string(id));
  }
  // Every distinct key is cached on exactly `replication` members.
  EXPECT_EQ(router.TotalCacheSize("kv"), 2 * queried.size());
  // And a repeat query is a hit on its preferred owner.
  service::AccessStats stats;
  ASSERT_TRUE(app->Query("Q1", {Value(1)}, &stats).ok());
  EXPECT_TRUE(stats.cache_hit);
  EXPECT_EQ(router.route_stats().replica_fallbacks, 0u);
}

TEST(ClusterRouterTest, SingleNodeClusterBehavesLikeOneNode) {
  ClusterOptions options;
  options.num_nodes = 1;
  options.replication = 2;  // Capped by the member count.
  ClusterRouter router(options);
  auto cluster_app = MakeKvApp("kv", &router);

  service::DsspNode node;
  auto plain_app = MakeKvApp("kv", &node);

  for (int64_t id = 1; id <= 30; ++id) {
    service::AccessStats a, b;
    auto via_cluster = cluster_app->Query("Q1", {Value(id)}, &a);
    auto via_node = plain_app->Query("Q1", {Value(id)}, &b);
    ASSERT_TRUE(via_cluster.ok() && via_node.ok());
    EXPECT_EQ(via_cluster->rows(), via_node->rows());
    EXPECT_EQ(a.cache_hit, b.cache_hit);
  }
  ASSERT_TRUE(cluster_app->Update("U1", {Value(77), Value(5)}).ok());
  ASSERT_TRUE(plain_app->Update("U1", {Value(77), Value(5)}).ok());
  EXPECT_EQ(router.AppStats("kv").entries_invalidated,
            node.stats("kv").entries_invalidated);
  EXPECT_EQ(router.TotalCacheSize("kv"), node.CacheSize("kv"));
}

TEST(ClusterRouterTest, DeadOwnerFallsBackToReplicaWithoutMissing) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.replication = 2;
  ClusterRouter router(options);
  auto app = MakeKvApp("kv", &router);

  for (int64_t id = 1; id <= 60; ++id) {
    ASSERT_TRUE(app->Query("Q1", {Value(id)}).ok());
  }
  router.KillNode(0);

  // Through the outage every key still hits: consistent hashing promotes
  // exactly the member that already replicates each of the dead owner's
  // keys, so the survivors serve everything from cache.
  uint64_t outage_hits = 0;
  for (int64_t id = 1; id <= 60; ++id) {
    service::AccessStats stats;
    ASSERT_TRUE(app->Query("Q1", {Value(id)}, &stats).ok());
    if (stats.cache_hit) ++outage_hits;
  }
  EXPECT_EQ(outage_hits, 60u);
  // The lookup-path wire failures drove the failure detector.
  EXPECT_EQ(router.membership().health(0), NodeHealth::kDown);
  EXPECT_GT(router.route_stats().rebalances, 0u);

  // Keys first stored DURING the outage live only on the survivors.
  for (int64_t id = 61; id <= 120; ++id) {
    ASSERT_TRUE(app->Query("Q1", {Value(id)}).ok());
  }
  ASSERT_TRUE(router.ReviveNode(0).ok());

  // After the rejoin, node 0 owns a share of those keys again but never
  // saw their stores; the member that stood in for it answers from the
  // replica-fallback path, so clients still miss nothing.
  uint64_t rejoin_hits = 0;
  for (int64_t id = 61; id <= 120; ++id) {
    service::AccessStats stats;
    ASSERT_TRUE(app->Query("Q1", {Value(id)}, &stats).ok());
    if (stats.cache_hit) ++rejoin_hits;
  }
  EXPECT_EQ(rejoin_hits, 60u);
  EXPECT_GT(router.route_stats().replica_fallbacks, 0u);
}

TEST(ClusterRouterTest, RejoinDrainsMissedInvalidationsBeforeServing) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.replication = 1;  // No replicas: placement is unambiguous.
  options.seed = 11;
  ClusterRouter router(options);
  auto app = MakeKvApp("kv", &router);

  // Warm every key, then kill node 1 and update THROUGH the outage.
  for (int64_t id = 1; id <= 50; ++id) {
    ASSERT_TRUE(app->Query("Q1", {Value(id)}).ok());
  }
  router.KillNode(1);
  for (int64_t id = 1; id <= 50; ++id) {
    ASSERT_TRUE(app->Update("U1", {Value(1000 + id), Value(id)}).ok());
  }
  EXPECT_EQ(router.membership().health(1), NodeHealth::kDown);
  const size_t missed = router.bus().Pending(1);
  EXPECT_GT(missed, 0u);

  // The rejoin gate: revive drains the queue before the member serves.
  auto replayed = router.ReviveNode(1);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, missed);
  EXPECT_EQ(router.bus().Pending(1), 0u);
  EXPECT_EQ(router.membership().health(1), NodeHealth::kAlive);

  // Post-rejoin queries see the updated values (no stale cache survivors).
  for (int64_t id = 1; id <= 50; ++id) {
    auto result = app->Query("Q1", {Value(id)});
    ASSERT_TRUE(result.ok());
    auto direct = app->home().database().ExecuteQuery(
        app->templates().queries()[0].Bind({Value(id)}));
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(result->SameResult(*direct)) << "id=" << id;
  }
  EXPECT_GT(router.node_stats(1).warming_lookups, 0u);
}

TEST(ClusterRouterTest, LaggingMemberIsSkippedUntilItCatchesUp) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.replication = 2;  // Both members hold every key.
  ClusterRouter router(options);
  auto app = MakeKvApp("kv", &router);
  ASSERT_TRUE(app->Query("Q1", {Value(1)}).ok());

  // Wedge member 0's bus queue open (deferred), then push an update: its
  // pending count now exceeds bus_lag = 0, so it must not serve.
  router.bus().SetDeferred(0, true);
  ASSERT_TRUE(app->Update("U1", {Value(9), Value(2)}).ok());
  ASSERT_GT(router.bus().Pending(0), 0u);

  const uint64_t skips_before = router.route_stats().lagging_skips;
  ASSERT_TRUE(app->Query("Q1", {Value(1)}).ok());
  EXPECT_GT(router.route_stats().lagging_skips, skips_before);

  // Catch the member up; it serves again.
  router.bus().SetDeferred(0, false);
  ASSERT_TRUE(router.bus().Flush(0).ok());
  const uint64_t skips_after = router.route_stats().lagging_skips;
  ASSERT_TRUE(app->Query("Q1", {Value(1)}).ok());
  EXPECT_EQ(router.route_stats().lagging_skips, skips_after);
}

TEST(ClusterRouterTest, CacheCapacityIsCeilDividedAcrossMembers) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.replication = 1;
  ClusterRouter router(options);
  auto app = MakeKvApp("kv", &router);
  router.SetCacheCapacity("kv", 10);  // ceil(10/4) = 3 per member.

  for (int64_t id = 1; id <= kKeySpace; ++id) {
    ASSERT_TRUE(app->Query("Q1", {Value(id)}).ok());
  }
  EXPECT_LE(router.TotalCacheSize("kv"), 12u);
  EXPECT_GT(router.AppStats("kv").entries_invalidated +
                router.TotalCacheSize("kv"),
            0u);
}

// ----- Concurrency soak (the TSan lane's target). -----

TEST(ClusterConcurrencyTest, ParallelTrafficWithKillAndRejoinStaysSafe) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.replication = 2;
  ClusterRouter router(options);
  auto app = MakeKvApp("kv", &router);
  // Nonced updates: a multi-threaded tenant must use the hardened wire so
  // the home server serializes concurrent applies (the legacy nonce-less
  // path assumes a single-threaded tenant).
  app->SetWirePolicy(service::WirePolicy{});

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 300;

  // Phase 1: concurrent reads while a chaos thread kills and revives a
  // member. Reads and membership transitions must not race.
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          const int64_t id = (i * 7 + t * 13) % kKeySpace + 1;
          auto result = app->Query("Q1", {Value(id)});
          ASSERT_TRUE(result.ok());
          ASSERT_EQ(result->num_rows(), 1u);
        }
      });
    }
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        router.KillNode(2);
        std::this_thread::yield();
        while (!router.ReviveNode(2).ok()) std::this_thread::yield();
      }
    });
    for (std::thread& t : threads) t.join();
  }

  // Phase 2: concurrent updates fan invalidations through the bus from
  // multiple publisher threads.
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kOpsPerThread / 3; ++i) {
          const int64_t id = (i * 3 + t * 29) % kKeySpace + 1;
          auto effect =
              app->Update("U1", {Value(t * 100000 + i), Value(id)});
          ASSERT_TRUE(effect.ok());
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Every member saw every published notice exactly once.
  const BusStats stats = router.bus().stats();
  EXPECT_EQ(stats.published,
            static_cast<uint64_t>(kThreads) * (kOpsPerThread / 3));
  for (int i = 0; i < router.num_nodes(); ++i) {
    EXPECT_EQ(router.bus().Pending(i), 0u) << "node " << i;
  }

  // And the caches are coherent: every key matches the master database.
  for (int64_t id = 1; id <= kKeySpace; ++id) {
    auto result = app->Query("Q1", {Value(id)});
    ASSERT_TRUE(result.ok());
    auto direct = app->home().database().ExecuteQuery(
        app->templates().queries()[0].Bind({Value(id)}));
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(result->SameResult(*direct)) << "id=" << id;
  }
}

// ----- Malformed-notice handling on the bus endpoint. -----

// A frame the node refuses (template index out of range for the app) must
// answer with an error and must NOT consume its nonce: a later corrected
// frame reusing the nonce still applies.
TEST(NodeChannelTest, RejectedNoticeIsNotNonceRecorded) {
  service::DsspNode node;
  auto app = MakeKvApp("kv", &node);
  NodeChannel channel(node);

  service::InvalidateRequest bad = MakeInvalidate("kv", 5);
  bad.level = 1;  // Template-level...
  bad.template_index = 999;  // ...with an index the app never published.
  auto outcome = channel.RoundTrip(Seal(Encode(bad)));
  ASSERT_TRUE(outcome.delivered);
  auto inner = service::Unseal(outcome.response);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(service::PeekType(*inner), service::MessageType::kError);
  EXPECT_EQ(channel.notices_applied(), 0u);
  // The endpoint refuses the frame before OnUpdate ever sees it; the
  // node-level rejection counter is for notices that reach the node.
  EXPECT_EQ(node.stats("kv").rejected_notices, 0u);

  service::InvalidateRequest fixed = MakeInvalidate("kv", 5);  // Same nonce.
  fixed.level = 1;
  fixed.template_index = 0;
  outcome = channel.RoundTrip(Seal(Encode(fixed)));
  ASSERT_TRUE(outcome.delivered);
  EXPECT_EQ(channel.notices_applied(), 1u);
  EXPECT_EQ(channel.duplicates_suppressed(), 0u);

  // An out-of-range level byte is refused before it ever becomes an enum.
  service::InvalidateRequest bad_level = MakeInvalidate("kv", 6);
  bad_level.level = 7;
  outcome = channel.RoundTrip(Seal(Encode(bad_level)));
  ASSERT_TRUE(outcome.delivered);
  inner = service::Unseal(outcome.response);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(service::PeekType(*inner), service::MessageType::kError);
  EXPECT_EQ(channel.notices_applied(), 1u);
}

// A remote invalidation delivered through the bus endpoint must advance the
// member's staleness epoch exactly once — duplicates (retried frames) are
// deduplicated and must not age retained entries twice.
TEST(NodeChannelTest, RemoteInvalidationAdvancesStaleEpochOnce) {
  service::DsspNode node;
  auto app = MakeKvApp("kv", &node);
  NodeChannel channel(node);
  node.SetStaleRetention("kv", 10);
  service::CacheEntry entry;
  entry.key = "k";
  entry.blob = "blob";
  node.Store("kv", std::move(entry));

  const std::string frame = Seal(Encode(MakeInvalidate("kv", 9)));
  ASSERT_TRUE(channel.RoundTrip(frame).delivered);
  EXPECT_TRUE(node.LookupStale("kv", "k", 1).has_value());
  EXPECT_FALSE(node.LookupStale("kv", "k", 0).has_value());

  // Same nonce again: suppressed, the entry is still only one behind.
  ASSERT_TRUE(channel.RoundTrip(frame).delivered);
  EXPECT_EQ(channel.duplicates_suppressed(), 1u);
  EXPECT_TRUE(node.LookupStale("kv", "k", 1).has_value());
}

// ----- k-staleness vs. bus backlog. -----

// Updates still queued on the bus for a member have not bumped its local
// epoch: an entry it retained reads fresher than it globally is. The router
// must tighten the caller's staleness bound by the member's backlog.
TEST(ClusterRouterTest, StaleBoundTightensWithBusBacklog) {
  ClusterOptions options;
  options.num_nodes = 1;
  options.replication = 1;
  options.bus.bus_lag = 3;  // Defer delivery while <= 3 frames queue.
  ClusterRouter router(options);
  auto app = MakeKvApp("kv", &router);
  router.SetStaleRetention("kv", 10);

  service::CacheEntry entry;
  entry.key = "k";
  entry.blob = "blob";
  router.node(0).Store("kv", std::move(entry));

  service::UpdateNotice blind;  // Blind: invalidates everything.
  router.OnUpdate("kv", blind);
  ASSERT_TRUE(router.bus().Flush(0).ok());  // U1 applied: entry 1 behind.
  router.OnUpdate("kv", blind);  // U2, U3: deferred under the lag bound —
  router.OnUpdate("kv", blind);  // the member is 2 frames behind globally.
  ASSERT_EQ(router.bus().Pending(0), 2u);

  // Globally the entry is 3 updates behind (U1 applied + 2 queued).
  EXPECT_TRUE(router.LookupStale("kv", "k", 3).has_value());
  // A bound of 2 must miss: the member alone would report 1 behind and
  // serve it, but the backlog makes that answer 3 behind in global terms.
  EXPECT_FALSE(router.LookupStale("kv", "k", 2).has_value());
  // A bound below the backlog itself skips the member entirely.
  const uint64_t skips_before = router.route_stats().lagging_skips;
  EXPECT_FALSE(router.LookupStale("kv", "k", 1).has_value());
  EXPECT_GT(router.route_stats().lagging_skips, skips_before);
}

}  // namespace
}  // namespace dssp::cluster
