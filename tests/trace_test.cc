#include <gtest/gtest.h>

#include "crypto/keyring.h"
#include "sim/trace.h"
#include "workloads/application.h"

namespace dssp::sim {
namespace {

using sql::Value;

TEST(TraceTest, SerializeParseRoundTrip) {
  std::vector<DbOp> trace = {
      {false, "Q4", {Value("SCIFI")}},
      {true, "U6", {Value(55), Value(417)}},
      {false, "Q26", {Value(5.0)}},
      {false, "Q5", {Value("it's quoted")}},
      {true, "U9", {Value::Null(), Value(-3)}},
      {false, "Q1", {}},
  };
  const std::string text = SerializeTrace(trace);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*parsed)[i].is_update, trace[i].is_update) << i;
    EXPECT_EQ((*parsed)[i].template_id, trace[i].template_id) << i;
    ASSERT_EQ((*parsed)[i].params.size(), trace[i].params.size()) << i;
    for (size_t p = 0; p < trace[i].params.size(); ++p) {
      EXPECT_EQ((*parsed)[i].params[p].type(), trace[i].params[p].type());
      if (!trace[i].params[p].is_null()) {
        EXPECT_TRUE((*parsed)[i].params[p] == trace[i].params[p]);
      }
    }
  }
}

TEST(TraceTest, ParserSkipsCommentsAndBlankLines) {
  auto parsed = ParseTrace("# header\n\nQ Q1 1\n   \n# tail\nU U1 2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(TraceTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(ParseTrace("X Q1 1").ok());
  EXPECT_FALSE(ParseTrace("Q ").ok());
  EXPECT_FALSE(ParseTrace("Q Q1 'unterminated").ok());
  EXPECT_FALSE(ParseTrace("Q Q1 SELECT").ok());
  EXPECT_FALSE(ParseTrace("Q Q1 ??").ok());
}

TEST(TraceTest, RecordAndReplayAgainstLiveService) {
  service::DsspNode node;
  service::ScalableApp app("toystore", &node,
                           crypto::KeyRing::FromPassphrase("trace"));
  auto workload = workloads::MakeApplication("toystore");
  ASSERT_TRUE(workload->Setup(app, 1.0, 7).ok());
  ASSERT_TRUE(app.Finalize().ok());

  auto generator = workload->NewSession(1);
  Rng rng(42);
  const std::vector<DbOp> trace = RecordPages(*generator, rng, 60);
  ASSERT_GT(trace.size(), 60u);

  auto stats = ReplayTrace(app, trace);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->queries + stats->updates, trace.size());
  EXPECT_GT(stats->queries, stats->updates);
  EXPECT_GT(stats->cache_hits, 0u);
  EXPECT_GT(stats->hit_rate(), 0.0);
}

TEST(TraceTest, TextRoundTripReplaysIdentically) {
  // Replaying a trace and replaying its serialize->parse image produce the
  // same cache behaviour on fresh systems.
  auto build = [](const std::string& tag) {
    struct Sys {
      service::DsspNode node;
      std::unique_ptr<service::ScalableApp> app;
      std::unique_ptr<workloads::Application> workload;
    };
    auto sys = std::make_unique<Sys>();
    sys->app = std::make_unique<service::ScalableApp>(
        "toystore", &sys->node, crypto::KeyRing::FromPassphrase(tag));
    sys->workload = workloads::MakeApplication("toystore");
    DSSP_CHECK_OK(sys->workload->Setup(*sys->app, 1.0, 7));
    DSSP_CHECK_OK(sys->app->Finalize());
    return sys;
  };

  auto original_system = build("one");
  auto generator = original_system->workload->NewSession(1);
  Rng rng(9);
  const std::vector<DbOp> trace = RecordPages(*generator, rng, 40);
  auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok());

  auto original = ReplayTrace(*original_system->app, trace);
  auto round_tripped_system = build("two");
  auto round_tripped = ReplayTrace(*round_tripped_system->app, *parsed);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(round_tripped.ok());
  EXPECT_EQ(original->cache_hits, round_tripped->cache_hits);
  EXPECT_EQ(original->entries_invalidated,
            round_tripped->entries_invalidated);
  EXPECT_EQ(original->rows_returned, round_tripped->rows_returned);
  EXPECT_EQ(original->rows_affected, round_tripped->rows_affected);
}

}  // namespace
}  // namespace dssp::sim
