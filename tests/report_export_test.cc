#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/report_export.h"
#include "workloads/toystore.h"

namespace dssp::analysis {
namespace {

class ReportExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bundle = workloads::MakeToystore();
    ASSERT_TRUE(bundle.ok());
    db_ = std::move(bundle->db);
    templates_ = std::move(bundle->templates);
    ipm_ = IpmCharacterization::Compute(templates_, db_->catalog());
    CompulsoryPolicy policy;
    policy.sensitive_attributes.insert(
        templates::AttributeId{"credit_card", "number"});
    report_ = RunMethodology(templates_, db_->catalog(), policy);
  }

  std::unique_ptr<engine::Database> db_;
  templates::TemplateSet templates_;
  IpmCharacterization ipm_{};
  SecurityReport report_;
};

TEST_F(ReportExportTest, IpmMarkdownHasAllPairs) {
  const std::string md = IpmToMarkdown(templates_, ipm_);
  // Header + separator + 6 pairs.
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 8);
  EXPECT_NE(md.find("| U1 | Q1 | A=1, B=A, C<B |"), std::string::npos);
  EXPECT_NE(md.find("| U1 | Q3 | A=B=C=0 |"), std::string::npos);
  EXPECT_NE(md.find("| U2 | Q3 | A=1, B<A, C=B |"), std::string::npos);
}

TEST_F(ReportExportTest, IpmCsvParsesBackToSixRows) {
  const std::string csv = IpmToCsv(templates_, ipm_);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);  // Header + 6.
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "update,query,a_is_zero,b_equals_a,c_equals_b,rationale");
  EXPECT_NE(csv.find("\"U1\",\"Q2\",0,0,1,"), std::string::npos);
  EXPECT_NE(csv.find("\"U2\",\"Q1\",1,1,1,"), std::string::npos);
}

TEST_F(ReportExportTest, SecurityReportMarkdown) {
  const std::string md = SecurityReportToMarkdown(templates_, report_);
  EXPECT_NE(md.find("| Q3 | query |"), std::string::npos);
  EXPECT_NE(md.find("| view | template | yes |"), std::string::npos);
  EXPECT_NE(md.find("SELECT qty FROM toys WHERE toy_id = ?"),
            std::string::npos);
  // 5 templates + header + separator.
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 7);
}

TEST_F(ReportExportTest, SecurityReportCsv) {
  const std::string csv = SecurityReportToCsv(report_);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
  EXPECT_NE(csv.find("\"Q2\",query,view,stmt,1"), std::string::npos);
  EXPECT_NE(csv.find("\"U1\",update,stmt,stmt,0"), std::string::npos);
}

TEST_F(ReportExportTest, CsvQuotingEscapesQuotes) {
  // Rationales never contain quotes today, but the quoting rule must hold.
  IpmCharacterization ipm = ipm_;
  const std::string csv = IpmToCsv(templates_, ipm);
  // Every line has an even number of quote characters (balanced fields).
  size_t start = 0;
  while (start < csv.size()) {
    size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    const std::string line = csv.substr(start, end - start);
    EXPECT_EQ(std::count(line.begin(), line.end(), '"') % 2, 0) << line;
    start = end + 1;
  }
}

}  // namespace
}  // namespace dssp::analysis
