// Robustness sweeps for the SQL front end: random byte soup and mutated
// valid statements must never crash the tokenizer or parser — they either
// parse or return a ParseError status.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "sql/parser.h"
#include "sql/tokenizer.h"

namespace dssp::sql {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const size_t length = rng.NextBelow(120);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(static_cast<char>(rng.NextBelow(128)));
    }
    auto tokens = Tokenize(input);     // Must not crash.
    auto statement = Parse(input);     // Must not crash.
    if (statement.ok()) {
      // Anything that parses must round-trip through the printer.
      auto reparsed = Parse(ToSql(*statement));
      EXPECT_TRUE(reparsed.ok()) << input;
    } else {
      EXPECT_EQ(statement.status().code(), StatusCode::kParseError);
    }
  }
}

TEST_P(FuzzTest, MutatedValidStatementsNeverCrash) {
  Rng rng(GetParam() + 1000);
  const std::string bases[] = {
      "SELECT i_id, i_title FROM item, author "
      "WHERE item.i_a_id = author.a_id AND i_subject = ? "
      "ORDER BY i_title LIMIT 50",
      "INSERT INTO credit_card (cid, number, zip_code) VALUES (?, ?, ?)",
      "UPDATE toys SET qty = ?, toy_name = 'x' WHERE toy_id = ?",
      "DELETE FROM bids WHERE b_date < ? AND b_bid >= 3.5",
      "SELECT i_subject, COUNT(i_id) FROM item WHERE i_cost >= ? "
      "GROUP BY i_subject ORDER BY i_subject DESC",
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string input(bases[rng.NextBelow(5)]);
    const size_t mutations = 1 + rng.NextBelow(4);
    for (size_t m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBelow(input.size());
      switch (rng.NextBelow(3)) {
        case 0:  // Flip a character.
          input[pos] = static_cast<char>(rng.NextBelow(128));
          break;
        case 1:  // Delete a character.
          input.erase(pos, 1);
          break;
        default:  // Duplicate a slice.
          input.insert(pos, input.substr(pos, rng.NextBelow(8)));
          break;
      }
      if (input.empty()) input = "x";
    }
    auto statement = Parse(input);  // Must not crash; outcome is free.
    if (statement.ok()) {
      EXPECT_TRUE(Parse(ToSql(*statement)).ok()) << input;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace dssp::sql
