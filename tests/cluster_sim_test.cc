// Cluster simulator tests: a 1-node cluster must reproduce the single-node
// simulator's numbers exactly, and the kill/rejoin scenario must complete
// with zero failed client operations.

#include "sim/cluster_sim.h"

#include <gtest/gtest.h>

#include <memory>

#include "cluster/router.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/node.h"
#include "sim/simulator.h"
#include "workloads/application.h"

namespace dssp::sim {
namespace {

struct System {
  std::unique_ptr<service::ScalableApp> app;
  std::unique_ptr<workloads::Application> workload;
  std::unique_ptr<SessionGenerator> generator;
};

System BuildBookstore(service::CacheBackend* backend) {
  System system;
  system.app = std::make_unique<service::ScalableApp>(
      "bookstore", backend, crypto::KeyRing::FromPassphrase("sim-test"));
  system.workload = workloads::MakeApplication("bookstore");
  EXPECT_TRUE(system.workload->Setup(*system.app, /*scale=*/0.2,
                                     /*seed=*/5)
                  .ok());
  EXPECT_TRUE(system.app->Finalize().ok());
  system.generator = system.workload->NewSession(/*seed=*/9);
  return system;
}

SimConfig TestConfig() {
  SimConfig config;
  config.duration_s = 40.0;
  config.think_time_mean_s = 1.0;
  config.dssp_workers = 2;
  config.seed = 31;
  return config;
}

TEST(ClusterSimTest, OneNodeClusterReproducesSingleNodeNumbers) {
  cluster::ClusterOptions options;
  options.num_nodes = 1;
  cluster::ClusterRouter router(options);
  System clustered = BuildBookstore(&router);

  service::DsspNode node;
  System single = BuildBookstore(&node);

  const SimConfig config = TestConfig();
  auto cluster_result = RunClusterSimulation(
      router, {Tenant{clustered.app.get(), clustered.generator.get(), 40}},
      config);
  ASSERT_TRUE(cluster_result.ok());
  auto single_result = RunMultiTenantSimulation(
      {Tenant{single.app.get(), single.generator.get(), 40}}, config);
  ASSERT_TRUE(single_result.ok());

  const SimResult& a = cluster_result->tenants[0];
  const SimResult& b = (*single_result)[0];
  EXPECT_EQ(a.pages_completed, b.pages_completed);
  EXPECT_EQ(a.db_ops, b.db_ops);
  EXPECT_EQ(a.cache_hit_rate, b.cache_hit_rate);
  EXPECT_EQ(a.entries_invalidated, b.entries_invalidated);
  EXPECT_EQ(a.home_queries, b.home_queries);
  EXPECT_EQ(a.home_updates, b.home_updates);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.p90_response_s, b.p90_response_s);
  EXPECT_EQ(a.failed_ops, 0u);

  // All ops were charged to the only member; none fell through unrouted
  // except home-only operations, which both paths treat identically.
  ASSERT_EQ(cluster_result->node_ops.size(), 1u);
  EXPECT_GT(cluster_result->node_ops[0], 0u);
  EXPECT_EQ(cluster_result->fallback_ops, 0u);
}

TEST(ClusterSimTest, KillAndRejoinCompletesWithZeroFailedOps) {
  cluster::ClusterOptions options;
  options.num_nodes = 4;
  options.replication = 2;
  cluster::ClusterRouter router(options);
  System system = BuildBookstore(&router);

  const SimConfig config = TestConfig();
  ClusterScenario scenario;
  scenario.kill_node = 1;
  scenario.kill_at_s = config.duration_s / 3.0;
  scenario.rejoin_at_s = 2.0 * config.duration_s / 3.0;

  auto result = RunClusterSimulation(
      router, {Tenant{system.app.get(), system.generator.get(), 60}}, config,
      scenario);
  ASSERT_TRUE(result.ok());

  EXPECT_TRUE(result->kill_fired);
  EXPECT_TRUE(result->rejoin_fired);
  EXPECT_EQ(result->tenants[0].failed_ops, 0u);
  EXPECT_GT(result->tenants[0].pages_completed, 0u);

  // The killed member went down and came back; the others kept serving.
  const auto counters = router.membership().counters(scenario.kill_node);
  EXPECT_EQ(counters.down_transitions, 1u);
  EXPECT_EQ(counters.rejoins, 1u);
  EXPECT_EQ(router.membership().health(scenario.kill_node),
            cluster::NodeHealth::kAlive);
  ASSERT_EQ(result->node_ops.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(result->node_ops[i], 0u) << "node " << i;
  }
}

// Equality across every field two runs of the same workload must agree on.
void ExpectSameSimResult(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.pages_completed, b.pages_completed);
  EXPECT_EQ(a.db_ops, b.db_ops);
  EXPECT_EQ(a.cache_hit_rate, b.cache_hit_rate);
  EXPECT_EQ(a.entries_invalidated, b.entries_invalidated);
  EXPECT_EQ(a.home_queries, b.home_queries);
  EXPECT_EQ(a.home_updates, b.home_updates);
  EXPECT_EQ(a.failed_ops, b.failed_ops);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.p50_response_s, b.p50_response_s);
  EXPECT_DOUBLE_EQ(a.p90_response_s, b.p90_response_s);
  EXPECT_DOUBLE_EQ(a.p99_response_s, b.p99_response_s);
  EXPECT_DOUBLE_EQ(a.max_response_s, b.max_response_s);
}

TEST(ClusterSimTest, ExponentialArrivalsReproduceSingleNodeNumbers) {
  cluster::ClusterOptions options;
  options.num_nodes = 1;
  cluster::ClusterRouter router(options);
  System clustered = BuildBookstore(&router);

  service::DsspNode node;
  System single = BuildBookstore(&node);

  SimConfig config = TestConfig();
  config.exponential_arrivals = true;
  auto cluster_result = RunClusterSimulation(
      router, {Tenant{clustered.app.get(), clustered.generator.get(), 40}},
      config);
  ASSERT_TRUE(cluster_result.ok());
  auto single_result = RunMultiTenantSimulation(
      {Tenant{single.app.get(), single.generator.get(), 40}}, config);
  ASSERT_TRUE(single_result.ok());
  ExpectSameSimResult(cluster_result->tenants[0], (*single_result)[0]);
}

TEST(ClusterSimTest, ExecutorThreadShapeDoesNotChangeResults) {
  auto run = [](int threads, double epoch_s) {
    cluster::ClusterOptions options;
    options.num_nodes = 2;
    cluster::ClusterRouter router(options);
    System system = BuildBookstore(&router);
    SimConfig config = TestConfig();
    config.duration_s = 25.0;
    config.exponential_arrivals = true;
    config.sim_threads = threads;
    config.sim_epoch_s = epoch_s;
    auto result = RunClusterSimulation(
        router, {Tenant{system.app.get(), system.generator.get(), 30}},
        config);
    EXPECT_TRUE(result.ok());
    return *result;
  };

  const ClusterSimResult a = run(1, 0.25);
  const ClusterSimResult b = run(4, 0.05);
  ExpectSameSimResult(a.tenants[0], b.tenants[0]);
  EXPECT_EQ(a.pages_measured, b.pages_measured);
  EXPECT_EQ(a.node_ops, b.node_ops);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(ClusterSimTest, BatchedBusReproducesUnbatchedResultsAtEqualLag) {
  auto run = [](size_t max_batch) {
    cluster::ClusterOptions options;
    options.num_nodes = 3;
    options.bus.bus_lag = 8;  // Equal staleness bound on both sides.
    options.bus.max_batch = max_batch;
    cluster::ClusterRouter router(options);
    System system = BuildBookstore(&router);
    SimConfig config = TestConfig();
    config.duration_s = 25.0;
    auto result = RunClusterSimulation(
        router, {Tenant{system.app.get(), system.generator.get(), 30}},
        config);
    EXPECT_TRUE(result.ok());
    const auto stats = router.bus().stats();
    if (max_batch > 1) {
      EXPECT_GT(stats.batches_sent, 0u);  // Coalescing actually happened.
    } else {
      EXPECT_EQ(stats.batches_sent, 0u);
    }
    EXPECT_EQ(stats.dropped_frames, 0u);
    return *result;
  };

  const ClusterSimResult unbatched = run(1);
  const ClusterSimResult batched = run(32);
  // Identical invalidation sets and timing: batching only reframes the
  // wire, and bus_lag counts notices either way.
  ExpectSameSimResult(unbatched.tenants[0], batched.tenants[0]);
  EXPECT_EQ(unbatched.node_ops, batched.node_ops);
  EXPECT_EQ(unbatched.pages_measured, batched.pages_measured);
}

TEST(ClusterSimTest, ScenarioFiresAtExactVirtualTime) {
  cluster::ClusterOptions options;
  options.num_nodes = 4;
  options.replication = 2;
  cluster::ClusterRouter router(options);
  System system = BuildBookstore(&router);

  // A deliberately quiet tail: two clients with think times far longer than
  // the run leave the event queue empty around the scenario instants. The
  // legacy lazy check (fire on the next popped client event) would apply
  // the kill late or never; first-class events fire exactly on time.
  SimConfig config = TestConfig();
  config.duration_s = 30.0;
  config.think_time_mean_s = 500.0;
  ClusterScenario scenario;
  scenario.kill_node = 2;
  scenario.kill_at_s = 11.03125;  // Off the epoch grid on purpose.
  scenario.rejoin_at_s = 23.015625;

  auto result = RunClusterSimulation(
      router, {Tenant{system.app.get(), system.generator.get(), 2}}, config,
      scenario);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->kill_fired);
  EXPECT_TRUE(result->rejoin_fired);
  EXPECT_DOUBLE_EQ(result->kill_fired_at_s, scenario.kill_at_s);
  EXPECT_DOUBLE_EQ(result->rejoin_fired_at_s, scenario.rejoin_at_s);
  EXPECT_EQ(router.membership().health(2), cluster::NodeHealth::kAlive);
}

System BuildSystem(const char* name, service::CacheBackend* backend) {
  System system;
  system.app = std::make_unique<service::ScalableApp>(
      name, backend, crypto::KeyRing::FromPassphrase("sim-test"));
  system.workload = workloads::MakeApplication(name);
  EXPECT_TRUE(system.workload->Setup(*system.app, /*scale=*/0.2,
                                     /*seed=*/5)
                  .ok());
  EXPECT_TRUE(system.app->Finalize().ok());
  system.generator = system.workload->NewSession(/*seed=*/9);
  return system;
}

TEST(ClusterSimTopology, ExplicitDefaultsReproduceLegacyNumbersExactly) {
  auto run = [](const HomeTopology& topology) {
    cluster::ClusterOptions options;
    options.num_nodes = 2;
    cluster::ClusterRouter router(options);
    System system = BuildBookstore(&router);
    auto result = RunClusterSimulation(
        router, {Tenant{system.app.get(), system.generator.get(), 40}},
        TestConfig(), /*scenario=*/{}, topology);
    EXPECT_TRUE(result.ok());
    return *result;
  };

  // Spelling out the documented defaults (one host per tenant, pool sized
  // to config.home_workers, no lease overhead) must be bit-identical to
  // not passing a topology at all.
  HomeTopology spelled_out;
  spelled_out.num_hosts = 1;  // One tenant.
  spelled_out.pool_size = TestConfig().home_workers;
  const ClusterSimResult implicit = run(HomeTopology{});
  const ClusterSimResult explicit_run = run(spelled_out);
  ExpectSameSimResult(implicit.tenants[0], explicit_run.tenants[0]);
  EXPECT_EQ(implicit.node_ops, explicit_run.node_ops);
  EXPECT_EQ(implicit.host_ops, explicit_run.host_ops);
  EXPECT_EQ(implicit.pool_leases_queued, explicit_run.pool_leases_queued);
  EXPECT_DOUBLE_EQ(implicit.pool_wait_s_total, explicit_run.pool_wait_s_total);
}

TEST(ClusterSimTopology, SharedHostSaturationQueuesWithoutFailures) {
  cluster::ClusterOptions options;
  options.num_nodes = 2;
  cluster::ClusterRouter router(options);
  System bookstore = BuildSystem("bookstore", &router);
  System auction = BuildSystem("auction", &router);

  // Two tenants funneled onto ONE host with ONE connection, and home
  // queries slowed 10x: the shared pool must saturate. Saturation shows up
  // as queued leases and wait time — backpressure — never as failed ops.
  SimConfig config = TestConfig();
  config.home_query_base_s = 0.100;
  HomeTopology topology;
  topology.num_hosts = 1;
  topology.pool_size = 1;

  auto result = RunClusterSimulation(
      router,
      {Tenant{bookstore.app.get(), bookstore.generator.get(), 30},
       Tenant{auction.app.get(), auction.generator.get(), 30}},
      config, /*scenario=*/{}, topology);
  ASSERT_TRUE(result.ok());

  EXPECT_GT(result->pool_leases_queued, 0u);
  EXPECT_GT(result->pool_wait_s_total, 0.0);
  EXPECT_GT(result->pool_wait_s_max, 0.0);
  EXPECT_EQ(result->pool_lease_timeouts, 0u);  // No deadline configured.
  for (const SimResult& tenant : result->tenants) {
    EXPECT_EQ(tenant.failed_ops, 0u);
    EXPECT_GT(tenant.pages_completed, 0u);
  }

  // Every home op from both tenants lands on the single host's pool.
  ASSERT_EQ(result->host_ops.size(), 1u);
  uint64_t home_ops = 0;
  for (const SimResult& tenant : result->tenants) {
    home_ops += tenant.home_queries + tenant.home_updates;
  }
  EXPECT_EQ(result->host_ops[0], home_ops);
  EXPECT_GT(home_ops, 0u);

  // Each tenant lazily materialized its catalog exactly once.
  EXPECT_EQ(result->catalogs_loaded, 2u);
}

TEST(ClusterSimTopology, LeaseDeadlineCountsTimeoutsButServesEveryOp) {
  cluster::ClusterOptions options;
  options.num_nodes = 2;
  cluster::ClusterRouter router(options);
  System bookstore = BuildSystem("bookstore", &router);
  System auction = BuildSystem("auction", &router);

  SimConfig config = TestConfig();
  config.home_query_base_s = 0.100;
  HomeTopology topology;
  topology.num_hosts = 1;
  topology.pool_size = 1;
  topology.lease_deadline_s = 0.010;  // Far below the saturated wait.

  auto result = RunClusterSimulation(
      router,
      {Tenant{bookstore.app.get(), bookstore.generator.get(), 30},
       Tenant{auction.app.get(), auction.generator.get(), 30}},
      config, /*scenario=*/{}, topology);
  ASSERT_TRUE(result.ok());

  // Deadline overruns are counted for the operator, but the lease is still
  // granted in arrival order — slow, visible, and lossless.
  EXPECT_GT(result->pool_lease_timeouts, 0u);
  EXPECT_LE(result->pool_lease_timeouts, result->pool_leases_queued);
  for (const SimResult& tenant : result->tenants) {
    EXPECT_EQ(tenant.failed_ops, 0u);
  }
}

TEST(ClusterSimTopology, LeaseLatencySlowsHomeOpsDeterministically) {
  auto run = [](double lease_latency_s) {
    cluster::ClusterOptions options;
    options.num_nodes = 2;
    cluster::ClusterRouter router(options);
    System system = BuildBookstore(&router);
    HomeTopology topology;
    topology.lease_latency_s = lease_latency_s;
    auto result = RunClusterSimulation(
        router, {Tenant{system.app.get(), system.generator.get(), 40}},
        TestConfig(), /*scenario=*/{}, topology);
    EXPECT_TRUE(result.ok());
    return *result;
  };

  const ClusterSimResult fast = run(0.0);
  const ClusterSimResult slow = run(0.050);
  // 50 ms of per-lease checkout overhead on a WAN-bound workload: strictly
  // slower pages, same zero-loss accounting, and reproducibly so.
  EXPECT_GT(slow.tenants[0].mean_response_s, fast.tenants[0].mean_response_s);
  EXPECT_EQ(slow.tenants[0].failed_ops, 0u);
  const ClusterSimResult again = run(0.050);
  ExpectSameSimResult(slow.tenants[0], again.tenants[0]);
}

TEST(ClusterSimTest, ScenarioDefaultsAreInert) {
  cluster::ClusterOptions options;
  options.num_nodes = 2;
  cluster::ClusterRouter router(options);
  System system = BuildBookstore(&router);

  SimConfig config = TestConfig();
  config.duration_s = 20.0;
  auto result = RunClusterSimulation(
      router, {Tenant{system.app.get(), system.generator.get(), 20}}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->kill_fired);
  EXPECT_FALSE(result->rejoin_fired);
  EXPECT_EQ(result->rejoin_replayed, 0u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(router.membership().health(i), cluster::NodeHealth::kAlive);
  }
}

}  // namespace
}  // namespace dssp::sim
