#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "workloads/application.h"

namespace dssp::workloads {
namespace {

using sql::Value;

class WorkloadTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    app_ = std::make_unique<service::ScalableApp>(
        GetParam(), &node_, crypto::KeyRing::FromPassphrase("wl-secret"));
    workload_ = MakeApplication(GetParam());
    ASSERT_TRUE(workload_->Setup(*app_, /*scale=*/0.5, /*seed=*/11).ok());
    ASSERT_TRUE(app_->Finalize().ok());
  }

  service::DsspNode node_;
  std::unique_ptr<service::ScalableApp> app_;
  std::unique_ptr<Application> workload_;
};

TEST_P(WorkloadTest, SetupPopulatesDatabase) {
  EXPECT_GT(app_->home().database().TotalRows(), 100u);
  EXPECT_GE(app_->templates().num_queries(), 3u);
  EXPECT_GE(app_->templates().num_updates(), 2u);
}

TEST_P(WorkloadTest, AllTemplatesParseAgainstSchema) {
  // Template creation validated every column/table; re-render and re-parse.
  for (const auto& q : app_->templates().queries()) {
    EXPECT_FALSE(q.ToSql().empty());
    EXPECT_GT(q.preserved_attributes().size(), 0u) << q.id();
  }
  for (const auto& u : app_->templates().updates()) {
    EXPECT_GT(u.modified_attributes().size(), 0u) << u.id();
  }
}

TEST_P(WorkloadTest, SessionSoakRunsCleanly) {
  // 150 pages through the full service path: every op must succeed (no
  // constraint violations, no unknown templates, no arity errors).
  auto session = workload_->NewSession(5);
  Rng rng(123);
  size_t ops = 0;
  size_t queries_with_rows = 0;
  for (int page = 0; page < 150; ++page) {
    for (const sim::DbOp& op : session->NextPage(rng)) {
      ++ops;
      if (op.is_update) {
        auto effect = app_->Update(op.template_id, op.params);
        ASSERT_TRUE(effect.ok())
            << GetParam() << " " << op.template_id << ": "
            << effect.status().ToString();
      } else {
        auto result = app_->Query(op.template_id, op.params);
        ASSERT_TRUE(result.ok())
            << GetParam() << " " << op.template_id << ": "
            << result.status().ToString();
        if (!result->empty()) ++queries_with_rows;
      }
    }
  }
  EXPECT_GT(ops, 200u);
  // The workload is not vacuous: plenty of queries return data.
  EXPECT_GT(queries_with_rows, ops / 10);
}

TEST_P(WorkloadTest, SessionsUseEveryUpdateTemplateEventually) {
  auto session = workload_->NewSession(5);
  Rng rng(77);
  std::set<std::string> used_queries;
  std::set<std::string> used_updates;
  for (int page = 0; page < 4000; ++page) {
    for (const sim::DbOp& op : session->NextPage(rng)) {
      (op.is_update ? used_updates : used_queries).insert(op.template_id);
    }
  }
  // Every update template and a large majority of query templates appear.
  EXPECT_EQ(used_updates.size(), app_->templates().num_updates())
      << GetParam();
  EXPECT_GE(used_queries.size(), app_->templates().num_queries() * 3 / 4)
      << GetParam();
}

TEST_P(WorkloadTest, CompulsoryPolicyIsNonEmpty) {
  const analysis::CompulsoryPolicy policy =
      workload_->CompulsoryEncryption(app_->home().database().catalog());
  EXPECT_FALSE(policy.sensitive_attributes.empty());
}

TEST_P(WorkloadTest, MethodologyRunsAndReducesExposure) {
  const analysis::SecurityReport report = analysis::RunMethodology(
      app_->templates(), app_->home().database().catalog(),
      workload_->CompulsoryEncryption(app_->home().database().catalog()));
  // The static analysis finds a substantial amount of free encryption:
  // a significant fraction of query templates end below `view`.
  EXPECT_GE(report.QueriesWithEncryptedResults(),
            app_->templates().num_queries() / 3)
      << GetParam();
  // And the final assignment is applicable to the live system.
  EXPECT_TRUE(app_->SetExposure(report.final).ok());
  auto session = workload_->NewSession(6);
  Rng rng(9);
  for (int page = 0; page < 30; ++page) {
    for (const sim::DbOp& op : session->NextPage(rng)) {
      if (op.is_update) {
        ASSERT_TRUE(app_->Update(op.template_id, op.params).ok());
      } else {
        ASSERT_TRUE(app_->Query(op.template_id, op.params).ok());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, WorkloadTest,
                         ::testing::Values("toystore", "auction", "bboard",
                                           "bookstore"),
                         [](const auto& info) { return info.param; });

// ----- Paper-specific shape checks. -----

TEST(BookstoreShapeTest, TwentyEightQueryTemplates) {
  service::DsspNode node;
  service::ScalableApp app("bookstore", &node,
                           crypto::KeyRing::FromPassphrase("s"));
  auto workload = MakeApplication("bookstore");
  ASSERT_TRUE(workload->Setup(app, 0.25, 1).ok());
  EXPECT_EQ(app.templates().num_queries(), 28u);
  EXPECT_EQ(app.templates().num_updates(), 12u);
}

TEST(AggregateFractionTest, SevenToFifteenPercent) {
  // Section 5.1.1: between 7% and 11% of each application's query templates
  // use aggregation or GROUP BY (we allow a slightly wider band).
  for (const std::string name : {"auction", "bboard", "bookstore"}) {
    service::DsspNode node;
    service::ScalableApp app(name, &node,
                             crypto::KeyRing::FromPassphrase("s"));
    auto workload = MakeApplication(name);
    ASSERT_TRUE(workload->Setup(app, 0.25, 1).ok());
    size_t aggregates = 0;
    for (const auto& q : app.templates().queries()) {
      if (q.has_aggregation()) ++aggregates;
    }
    const double fraction = static_cast<double>(aggregates) /
                            static_cast<double>(app.templates().num_queries());
    EXPECT_GE(fraction, 0.05) << name;
    EXPECT_LE(fraction, 0.15) << name;
  }
}

TEST(AssumptionComplianceTest, MostTemplatesSatisfyAssumptions) {
  // Two of three evaluation apps satisfy Section 2.1.1 fully; violations in
  // the third stay a small fraction (the paper reports < 3% of pairs).
  size_t clean_apps = 0;
  for (const std::string name : {"auction", "bboard", "bookstore"}) {
    service::DsspNode node;
    service::ScalableApp app(name, &node,
                             crypto::KeyRing::FromPassphrase("s"));
    auto workload = MakeApplication(name);
    ASSERT_TRUE(workload->Setup(app, 0.25, 1).ok());
    size_t violating_queries = 0;
    for (const auto& q : app.templates().queries()) {
      if (!q.assumptions().ok()) ++violating_queries;
    }
    size_t violating_updates = 0;
    for (const auto& u : app.templates().updates()) {
      if (!u.assumptions().ok()) ++violating_updates;
    }
    const size_t total_pairs =
        app.templates().num_queries() * app.templates().num_updates();
    const size_t violating_pairs =
        violating_queries * app.templates().num_updates() +
        violating_updates * app.templates().num_queries() -
        violating_queries * violating_updates;
    if (violating_pairs == 0) ++clean_apps;
    EXPECT_LE(static_cast<double>(violating_pairs) /
                  static_cast<double>(total_pairs),
              0.10)
        << name;
  }
  EXPECT_GE(clean_apps, 2u);
}

}  // namespace
}  // namespace dssp::workloads
