// Race-hunting smoke tests for the sharded DsspNode and QueryCache: mixed
// lookup/store/update/admin traffic from real threads across two tenants.
// Run under ThreadSanitizer (cmake -DDSSP_TSAN=ON) to hunt races; the
// assertions here only check that counters and indexes stay consistent.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/cache.h"
#include "dssp/node.h"
#include "workloads/toystore.h"

namespace dssp::service {
namespace {

using analysis::ExposureLevel;
using sql::Value;

CacheEntry TemplateEntry(const std::string& key, size_t template_index) {
  CacheEntry entry;
  entry.key = key;
  entry.level = ExposureLevel::kTemplate;
  entry.template_index = template_index;
  entry.blob = "blob:" + key;
  return entry;
}

class NodeConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"tenant-a", "tenant-b"}) {
      apps_.push_back(std::make_unique<ScalableApp>(
          name, &node_, crypto::KeyRing::FromPassphrase(name)));
      workloads_.emplace_back();
      ASSERT_TRUE(workloads_.back().Setup(*apps_.back(), 1.0, 7).ok());
      ASSERT_TRUE(apps_.back()->Finalize().ok());
    }
  }

  DsspNode node_;
  std::vector<std::unique_ptr<ScalableApp>> apps_;
  std::vector<workloads::ToystoreApplication> workloads_;
};

TEST_F(NodeConcurrencyTest, MixedTrafficAcrossTenantsIsConsistent) {
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeySpace = 256;
  const std::vector<std::string> tenants = {"tenant-a", "tenant-b"};

  // Pre-built exposure-gated notices (UpdateNotice is read-only to the
  // node): one template-level per update template, plus a blind one.
  std::vector<UpdateNotice> notices;
  for (size_t i = 0; i < apps_[0]->templates().num_updates(); ++i) {
    UpdateNotice notice;
    notice.level = ExposureLevel::kTemplate;
    notice.template_index = i;
    notices.push_back(std::move(notice));
  }
  notices.push_back(UpdateNotice{});  // Blind.

  std::atomic<uint64_t> lookups_issued{0};
  std::atomic<uint64_t> stores_issued{0};
  std::atomic<uint64_t> updates_issued{0};

  std::vector<std::thread> threads;
  // Per tenant: two mixed lookup/store workers and one updater.
  for (const std::string& tenant : tenants) {
    for (int worker = 0; worker < 2; ++worker) {
      threads.emplace_back([&, tenant, worker] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          const int k = (i * 31 + worker * 17) % kKeySpace;
          const std::string key =
              tenant + ":k" + std::to_string(k);
          if (i % 4 == 0) {
            node_.Store(tenant, TemplateEntry(key, k % 3));
            stores_issued.fetch_add(1, std::memory_order_relaxed);
          } else {
            node_.Lookup(tenant, key);
            lookups_issued.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    threads.emplace_back([&, tenant] {
      for (int i = 0; i < kOpsPerThread / 8; ++i) {
        node_.OnUpdate(tenant, notices[i % notices.size()]);
        updates_issued.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Admin thread: capacity flapping on one tenant plus a mid-run
  // registration interleaving with the traffic above.
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      node_.SetCacheCapacity("tenant-a", 64 + (i % 3) * 64);
      node_.CacheSize("tenant-a");
      node_.TotalCacheSize();
      node_.stats("tenant-b");
    }
    node_.SetCacheCapacity("tenant-a", 0);
    ASSERT_TRUE(node_
                    .RegisterApp("tenant-c",
                                 &apps_[0]->home().database().catalog(),
                                 &apps_[0]->templates())
                    .ok());
  });
  for (std::thread& t : threads) t.join();

  // Counters: every issued operation was counted exactly once.
  uint64_t lookups = 0, stores = 0, updates = 0;
  for (const std::string& tenant : tenants) {
    const DsspStats stats = node_.stats(tenant);
    lookups += stats.lookups;
    stores += stats.stores;
    updates += stats.updates_observed;
    EXPECT_EQ(stats.hits + stats.misses, stats.lookups) << tenant;
  }
  EXPECT_EQ(lookups, lookups_issued.load());
  EXPECT_EQ(stores, stores_issued.load());
  EXPECT_EQ(updates, updates_issued.load());
  EXPECT_TRUE(node_.HasApp("tenant-c"));

  // Tenant isolation: each surviving entry belongs to its tenant's space.
  for (const std::string& tenant : tenants) {
    EXPECT_LE(node_.CacheSize(tenant),
              static_cast<size_t>(kKeySpace));
    const std::optional<CacheEntry> entry =
        node_.Lookup(tenant, tenant + ":k0");
    if (entry.has_value()) {
      EXPECT_EQ(entry->key.rfind(tenant + ":", 0), 0u);
    }
  }
}

TEST(QueryCacheConcurrencyTest, ShardedCacheSurvivesMixedMutation) {
  QueryCache cache;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 8000;
  constexpr int kKeySpace = 512;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = (i * 13 + t * 7) % kKeySpace;
        const std::string key = "k" + std::to_string(k);
        switch ((i + t) % 8) {
          case 0:
          case 1:
            cache.Insert(TemplateEntry(key, k % 4));
            break;
          case 2:
            cache.Erase(key);
            break;
          case 3:
            cache.EraseGroup(i % 4);
            break;
          case 4:
            cache.Peek(key);
            break;
          case 5:
            cache.SetCapacity(i % 2 == 0 ? 128 : 0);
            break;
          default:
            cache.Lookup(key);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Quiesced: the group index and entry map must agree exactly.
  cache.SetCapacity(0);
  size_t indexed = 0;
  for (size_t group : cache.GroupKeys()) {
    for (const std::string& key : cache.GroupEntryKeys(group)) {
      const std::optional<CacheEntry> entry = cache.Peek(key);
      ASSERT_TRUE(entry.has_value()) << "indexed key missing: " << key;
      EXPECT_EQ(entry->template_index, group);
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, cache.size());
  EXPECT_LE(cache.size(), static_cast<size_t>(kKeySpace));
}

}  // namespace
}  // namespace dssp::service
