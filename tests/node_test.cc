#include <gtest/gtest.h>

#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/node.h"
#include "workloads/toystore.h"

namespace dssp::service {
namespace {

using analysis::ExposureAssignment;
using analysis::ExposureLevel;
using sql::Value;

class NodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = std::make_unique<ScalableApp>(
        "toystore", &node_, crypto::KeyRing::FromPassphrase("node-test"));
    ASSERT_TRUE(toystore_.Setup(*app_, 1.0, 7).ok());
    ASSERT_TRUE(app_->Finalize().ok());
  }

  DsspNode node_;
  std::unique_ptr<ScalableApp> app_;
  workloads::ToystoreApplication toystore_;
};

TEST_F(NodeTest, BlindUpdateNoticeInvalidatesEverything) {
  // Even entries of ignorable templates must die when the update reveals
  // nothing.
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}).ok());
  ASSERT_TRUE(app_->Query("Q3", {Value(10001)}).ok());
  ASSERT_EQ(node_.CacheSize("toystore"), 2u);

  UpdateNotice notice;
  notice.level = ExposureLevel::kBlind;
  EXPECT_EQ(node_.OnUpdate("toystore", notice), 2u);
  EXPECT_EQ(node_.CacheSize("toystore"), 0u);
}

TEST_F(NodeTest, TemplateNoticeUsesIgnorability) {
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}).ok());
  ASSERT_TRUE(app_->Query("Q3", {Value(10001)}).ok());

  UpdateNotice notice;
  notice.level = ExposureLevel::kTemplate;
  notice.template_index = 0;  // U1: DELETE FROM toys.
  // Q2 (toys) invalidated, Q3 (customers x credit_card) spared.
  EXPECT_EQ(node_.OnUpdate("toystore", notice), 1u);
  EXPECT_EQ(node_.CacheSize("toystore"), 1u);
}

TEST_F(NodeTest, StatementNoticeSparesIndependentInstances) {
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}).ok());
  ASSERT_TRUE(app_->Query("Q2", {Value(9)}).ok());

  UpdateNotice notice;
  notice.level = ExposureLevel::kStmt;
  notice.template_index = 0;
  notice.statement =
      app_->templates().updates()[0].Bind({Value(7)});
  EXPECT_EQ(node_.OnUpdate("toystore", notice), 1u);
  // Q2(9) survived.
  EXPECT_EQ(node_.CacheSize("toystore"), 1u);
}

TEST_F(NodeTest, BlindEntriesDieOnAnyUpdate) {
  ExposureAssignment exposure = ExposureAssignment::FullExposure(
      app_->templates().num_queries(), app_->templates().num_updates());
  exposure.query_levels[2] = ExposureLevel::kBlind;  // Q3 blind.
  ASSERT_TRUE(app_->SetExposure(exposure).ok());
  ASSERT_TRUE(app_->Query("Q3", {Value(10001)}).ok());

  // U1 is ignorable for Q3, but the DSSP cannot know which template the
  // blind entry belongs to.
  UpdateNotice notice;
  notice.level = ExposureLevel::kStmt;
  notice.template_index = 0;
  notice.statement = app_->templates().updates()[0].Bind({Value(7)});
  EXPECT_EQ(node_.OnUpdate("toystore", notice), 1u);
}

TEST_F(NodeTest, StatsCountOperations) {
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}).ok());
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}).ok());
  UpdateNotice notice;
  notice.level = ExposureLevel::kBlind;
  node_.OnUpdate("toystore", notice);
  const DsspStats& stats = node_.stats("toystore");
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.updates_observed, 1u);
  EXPECT_EQ(stats.entries_invalidated, 1u);
}

TEST_F(NodeTest, CapacityBoundsOneTenant) {
  node_.SetCacheCapacity("toystore", 3);
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(app_->Query("Q2", {Value(i)}).ok());
  }
  EXPECT_EQ(node_.CacheSize("toystore"), 3u);
  EXPECT_EQ(node_.CacheEvictions("toystore"), 7u);
  // The most recent entries are the survivors: Q2(10) hits...
  AccessStats stats;
  ASSERT_TRUE(app_->Query("Q2", {Value(10)}, &stats).ok());
  EXPECT_TRUE(stats.cache_hit);
  // ...and an evicted one misses.
  ASSERT_TRUE(app_->Query("Q2", {Value(1)}, &stats).ok());
  EXPECT_FALSE(stats.cache_hit);
}

TEST_F(NodeTest, TotalCacheSizeSpansApps) {
  ScalableApp other("toystore-b", &node_,
                    crypto::KeyRing::FromPassphrase("other"));
  workloads::ToystoreApplication toystore2;
  ASSERT_TRUE(toystore2.Setup(other, 1.0, 8).ok());
  ASSERT_TRUE(other.Finalize().ok());
  ASSERT_TRUE(app_->Query("Q2", {Value(1)}).ok());
  ASSERT_TRUE(other.Query("Q2", {Value(1)}).ok());
  ASSERT_TRUE(other.Query("Q2", {Value(2)}).ok());
  EXPECT_EQ(node_.TotalCacheSize(), 3u);
}

TEST_F(NodeTest, HasAppTracksRegistration) {
  EXPECT_FALSE(node_.HasApp("ghost"));
  EXPECT_TRUE(node_.HasApp("toystore"));
}

// Regression: every one of these used to DSSP_CHECK-abort the whole node
// on an unregistered app_id. A shared provider must degrade gracefully.
TEST_F(NodeTest, LookupForUnknownAppMisses) {
  EXPECT_FALSE(node_.Lookup("ghost", "some-key").has_value());
}

TEST_F(NodeTest, StoreForUnknownAppIsANoop) {
  CacheEntry entry;
  entry.key = "k";
  entry.blob = "blob";
  node_.Store("ghost", std::move(entry));
  EXPECT_EQ(node_.CacheSize("ghost"), 0u);
  EXPECT_EQ(node_.TotalCacheSize(), 0u);
}

TEST_F(NodeTest, OnUpdateForUnknownAppInvalidatesNothing) {
  UpdateNotice notice;
  notice.level = ExposureLevel::kBlind;
  EXPECT_EQ(node_.OnUpdate("ghost", notice), 0u);
}

TEST_F(NodeTest, StatsForUnknownAppAreZero) {
  const DsspStats stats = node_.stats("ghost");
  EXPECT_EQ(stats.lookups, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.updates_observed, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

TEST_F(NodeTest, CacheAccountingForUnknownAppIsZero) {
  EXPECT_EQ(node_.CacheEvictions("ghost"), 0u);
  const CacheCounters counters = node_.GetCacheCounters("ghost");
  EXPECT_EQ(counters.total_evictions(), 0u);
  EXPECT_EQ(counters.invalidation_removals, 0u);
  EXPECT_EQ(node_.CacheSize("ghost"), 0u);
  EXPECT_EQ(node_.ClearCache("ghost"), 0u);
  node_.SetCacheCapacity("ghost", 5);  // No-op, must not abort.
  EXPECT_FALSE(node_.HasApp("ghost"));
}

TEST_F(NodeTest, CacheCountersSplitEvictionCauses) {
  // Overflow evictions.
  node_.SetCacheCapacity("toystore", 3);
  for (int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(app_->Query("Q2", {Value(i)}).ok());
  }
  CacheCounters counters = node_.GetCacheCounters("toystore");
  EXPECT_EQ(counters.insert_evictions, 2u);
  EXPECT_EQ(counters.shrink_evictions, 0u);
  // Shrink evictions.
  node_.SetCacheCapacity("toystore", 1);
  counters = node_.GetCacheCounters("toystore");
  EXPECT_EQ(counters.shrink_evictions, 2u);
  EXPECT_EQ(counters.total_evictions(), 4u);
  EXPECT_EQ(node_.CacheEvictions("toystore"), 4u);
  // Invalidation removals are not evictions.
  UpdateNotice notice;
  notice.level = ExposureLevel::kBlind;
  EXPECT_EQ(node_.OnUpdate("toystore", notice), 1u);
  counters = node_.GetCacheCounters("toystore");
  EXPECT_EQ(counters.invalidation_removals, 1u);
  EXPECT_EQ(counters.total_evictions(), 4u);
}

// Regression: LookupStale must feed the lookup/miss counters like Lookup
// does — a degraded-mode deployment otherwise reports a hit rate computed
// over a denominator that ignores most of its traffic.
TEST_F(NodeTest, StaleLookupsCountAsLookupsAndMisses) {
  node_.SetStaleRetention("toystore", 8);
  CacheEntry entry;
  entry.key = "stale-key";
  entry.blob = "blob";
  node_.Store("toystore", std::move(entry));
  const std::string key = "stale-key";

  UpdateNotice notice;
  notice.level = ExposureLevel::kBlind;
  ASSERT_EQ(node_.OnUpdate("toystore", notice), 1u);

  const DsspStats before = node_.stats("toystore");
  ASSERT_TRUE(node_.LookupStale("toystore", key, 1).has_value());  // Hit.
  EXPECT_FALSE(node_.LookupStale("toystore", key, 0).has_value());  // Miss.
  EXPECT_FALSE(node_.LookupStale("toystore", "nope", 5).has_value());

  const DsspStats after = node_.stats("toystore");
  EXPECT_EQ(after.lookups, before.lookups + 3);
  EXPECT_EQ(after.misses, before.misses + 2);
  EXPECT_EQ(after.stale_hits, before.stale_hits + 1);
  EXPECT_EQ(after.hits, before.hits);  // Stale hits are not fresh hits.
}

// Regression: a malformed notice (out-of-range template index or exposure
// level) must be refused and counted, not abort the shared node.
TEST_F(NodeTest, MalformedNoticeIsRejectedNotFatal) {
  ASSERT_TRUE(app_->Query("Q2", {Value(7)}).ok());

  UpdateNotice bad_index;
  bad_index.level = ExposureLevel::kTemplate;
  bad_index.template_index = 999;
  EXPECT_EQ(node_.OnUpdate("toystore", bad_index), 0u);

  UpdateNotice bad_level;
  bad_level.level = static_cast<ExposureLevel>(7);
  EXPECT_EQ(node_.OnUpdate("toystore", bad_level), 0u);

  UpdateNotice view_level;  // Updates never expose views.
  view_level.level = ExposureLevel::kView;
  view_level.template_index = 0;
  EXPECT_EQ(node_.OnUpdate("toystore", view_level), 0u);

  const DsspStats stats = node_.stats("toystore");
  EXPECT_EQ(stats.rejected_notices, 3u);
  EXPECT_EQ(stats.updates_observed, 0u);
  EXPECT_EQ(node_.CacheSize("toystore"), 1u);  // Nothing invalidated.

  // The node survives and a well-formed notice still applies.
  UpdateNotice good;
  good.level = ExposureLevel::kBlind;
  EXPECT_EQ(node_.OnUpdate("toystore", good), 1u);
  EXPECT_EQ(node_.stats("toystore").updates_observed, 1u);
}

// Rejected notices must not advance the staleness epoch: an entry that is
// one observed update behind stays one behind through any amount of junk.
TEST_F(NodeTest, RejectedNoticesDoNotAdvanceStaleEpoch) {
  node_.SetStaleRetention("toystore", 8);
  CacheEntry entry;
  entry.key = "epoch-key";
  entry.blob = "blob";
  node_.Store("toystore", std::move(entry));
  const std::string key = "epoch-key";

  UpdateNotice good;
  good.level = ExposureLevel::kBlind;
  ASSERT_EQ(node_.OnUpdate("toystore", good), 1u);

  UpdateNotice bad;
  bad.level = ExposureLevel::kTemplate;
  bad.template_index = 12345;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(node_.OnUpdate("toystore", bad), 0u);
  }
  // Still exactly one update behind.
  EXPECT_TRUE(node_.LookupStale("toystore", key, 1).has_value());
}

}  // namespace
}  // namespace dssp::service
