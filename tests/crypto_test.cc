#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/random.h"
#include "crypto/cipher.h"
#include "crypto/keyring.h"

namespace dssp::crypto {
namespace {

Key TestKey() { return Key{0x1234567890abcdefULL, 0xfedcba0987654321ULL}; }

TEST(CipherTest, RoundTripBasic) {
  DeterministicCipher cipher(TestKey());
  const std::string plaintext = "SELECT qty FROM toys WHERE toy_id = 5";
  const std::string ciphertext = cipher.Encrypt(plaintext);
  EXPECT_NE(ciphertext, plaintext);
  EXPECT_EQ(cipher.Decrypt(ciphertext), plaintext);
}

TEST(CipherTest, LengthPreserving) {
  DeterministicCipher cipher(TestKey());
  for (size_t len : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 255u, 4096u}) {
    const std::string plaintext(len, 'a');
    EXPECT_EQ(cipher.Encrypt(plaintext).size(), len) << "len=" << len;
  }
}

// Round-trip across a sweep of lengths, including the short-input special
// cases (0 and 1 byte) and odd/even Feistel splits.
class CipherRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CipherRoundTripTest, RoundTrip) {
  DeterministicCipher cipher(TestKey());
  Rng rng(GetParam() + 1);
  std::string plaintext;
  for (size_t i = 0; i < GetParam(); ++i) {
    plaintext.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  EXPECT_EQ(cipher.Decrypt(cipher.Encrypt(plaintext)), plaintext);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CipherRoundTripTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                                           17, 31, 32, 33, 63, 100, 101, 255,
                                           256, 1000, 4095, 4096));

TEST(CipherTest, Deterministic) {
  DeterministicCipher cipher(TestKey());
  EXPECT_EQ(cipher.Encrypt("same input"), cipher.Encrypt("same input"));
}

TEST(CipherTest, DifferentKeysGiveDifferentCiphertexts) {
  DeterministicCipher a(Key{1, 2});
  DeterministicCipher b(Key{1, 3});
  EXPECT_NE(a.Encrypt("some plaintext here"),
            b.Encrypt("some plaintext here"));
}

TEST(CipherTest, DifferentPlaintextsGiveDifferentCiphertexts) {
  DeterministicCipher cipher(TestKey());
  EXPECT_NE(cipher.Encrypt("plaintext one!"), cipher.Encrypt("plaintext 2!!"));
}

TEST(CipherTest, CiphertextLooksUnstructured) {
  // A crude avalanche check: flipping one plaintext byte changes many
  // ciphertext bytes.
  DeterministicCipher cipher(TestKey());
  std::string a(64, 'a');
  std::string b = a;
  b[10] = 'b';
  const std::string ca = cipher.Encrypt(a);
  const std::string cb = cipher.Encrypt(b);
  int differing = 0;
  for (size_t i = 0; i < ca.size(); ++i) {
    if (ca[i] != cb[i]) ++differing;
  }
  EXPECT_GT(differing, 16);
}

TEST(CipherTest, TagIsDeterministicAndKeyed) {
  DeterministicCipher a(TestKey());
  DeterministicCipher b(Key{9, 9});
  EXPECT_EQ(a.Tag("data"), a.Tag("data"));
  EXPECT_NE(a.Tag("data"), b.Tag("data"));
  EXPECT_NE(a.Tag("data"), a.Tag("datb"));
}

TEST(KeyDerivationTest, LabelsAreIndependent) {
  const Key master = TestKey();
  const Key a = DeriveKey(master, "statement");
  const Key b = DeriveKey(master, "params");
  const Key c = DeriveKey(master, "statement");
  EXPECT_EQ(a, c);
  EXPECT_FALSE(a == b);
}

TEST(KeyRingTest, FromPassphraseIsDeterministic) {
  const KeyRing a = KeyRing::FromPassphrase("secret");
  const KeyRing b = KeyRing::FromPassphrase("secret");
  const KeyRing c = KeyRing::FromPassphrase("other");
  EXPECT_EQ(a.master(), b.master());
  EXPECT_FALSE(a.master() == c.master());
}

TEST(KeyRingTest, CipherForPurposeSeparation) {
  const KeyRing ring = KeyRing::FromPassphrase("secret");
  const std::string pt = "the same plaintext";
  EXPECT_EQ(ring.CipherFor("result").Encrypt(pt),
            ring.CipherFor("result").Encrypt(pt));
  EXPECT_NE(ring.CipherFor("result").Encrypt(pt),
            ring.CipherFor("statement").Encrypt(pt));
}

TEST(KeyRingTest, CrossAppIsolation) {
  // Two applications derive from different passphrases; their ciphertexts
  // never decrypt to each other's plaintexts.
  const KeyRing a = KeyRing::FromPassphrase("app-a");
  const KeyRing b = KeyRing::FromPassphrase("app-b");
  const std::string pt = "sensitive customer record";
  const std::string ct = a.CipherFor("result").Encrypt(pt);
  EXPECT_NE(b.CipherFor("result").Decrypt(ct), pt);
}

}  // namespace
}  // namespace dssp::crypto
