// Connection-pool tests: bounded leases with FIFO backpressure (exhaustion
// queues, never fails), virtual-time admission bit-identical to the
// simulator's QueueingResource, lease-deadline accounting, health probes
// over a seeded faulty wire marking a pool suspect and recycling
// connections, and a concurrent soak proving zero lost updates through a
// pooled backend under probe-failure churn (oracle-checked).

#include "backend/connection_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/host.h"
#include "backend/in_memory_backend.h"
#include "catalog/schema.h"
#include "common/random.h"
#include "crypto/keyring.h"
#include "dssp/channel.h"
#include "dssp/protocol.h"
#include "sim/resource.h"

namespace dssp::backend {
namespace {

using sql::Value;

std::unique_ptr<InMemoryBackend> MakeKvBackend(BackendOptions options = {}) {
  auto backend = std::make_unique<InMemoryBackend>(
      "kv-app", crypto::KeyRing::FromPassphrase("pool-secret"), options);
  engine::Database& db = backend->database();
  EXPECT_TRUE(db.CreateTable(catalog::TableSchema(
                                 "kv",
                                 {{"id", catalog::ColumnType::kInt64},
                                  {"val", catalog::ColumnType::kInt64}},
                                 {"id"}))
                  .ok());
  for (int64_t i = 0; i < 400; ++i) {
    EXPECT_TRUE(db.InsertRow("kv", {Value(i), Value(int64_t{0})}).ok());
  }
  EXPECT_TRUE(
      backend->AddQueryTemplate("SELECT val FROM kv WHERE id = ?").ok());
  EXPECT_TRUE(
      backend->AddUpdateTemplate("UPDATE kv SET val = ? WHERE id = ?").ok());
  return backend;
}

std::string EncryptedSql(const InMemoryBackend& backend,
                         const std::string& sql) {
  return backend.statement_cipher().Encrypt(sql);
}

// ----- Virtual-time admission ---------------------------------------------

TEST(ConnectionPoolAdmit, MatchesQueueingResourceBitForBit) {
  for (const int workers : {1, 2, 5}) {
    PoolOptions options;
    options.size = workers;
    ConnectionPool pool(options);
    sim::QueueingResource resource(workers);
    Rng rng(17);
    double arrival = 0;
    for (int i = 0; i < 500; ++i) {
      arrival += rng.NextExponential(0.01);
      const double service = rng.NextExponential(0.02);
      const ConnectionPool::Admission admission =
          pool.Admit(arrival, service);
      // Identical arithmetic, not just approximately equal: the simulator's
      // single-backend timing model is byte-diffed against this.
      EXPECT_EQ(admission.done, resource.Schedule(arrival, service))
          << "workers=" << workers << " job " << i;
    }
  }
}

TEST(ConnectionPoolAdmit, QueuedWaitIsBackpressureNotFailure) {
  PoolOptions options;
  options.size = 1;
  ConnectionPool pool(options);

  const ConnectionPool::Admission first = pool.Admit(0.0, 1.0);
  EXPECT_EQ(first.done, 1.0);
  EXPECT_FALSE(first.queued);

  // Arrives while the only connection is busy: waits, still completes.
  const ConnectionPool::Admission second = pool.Admit(0.25, 1.0);
  EXPECT_TRUE(second.queued);
  EXPECT_DOUBLE_EQ(second.wait_s, 0.75);
  EXPECT_DOUBLE_EQ(second.done, 2.0);

  const PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.leases_granted, 2u);
  EXPECT_EQ(stats.leases_queued, 1u);
  EXPECT_DOUBLE_EQ(stats.total_wait_s, 0.75);
  EXPECT_DOUBLE_EQ(stats.max_wait_s, 0.75);
}

TEST(ConnectionPoolAdmit, LeaseDeadlineCountsTimeoutsButStillServes) {
  PoolOptions options;
  options.size = 1;
  options.lease_deadline_s = 0.5;
  ConnectionPool pool(options);

  EXPECT_EQ(pool.Admit(0.0, 2.0).done, 2.0);
  // Waits 1.9s > 0.5s deadline: counted as a timeout (overload signal) but
  // drained FIFO all the same — the request is never dropped.
  const ConnectionPool::Admission late = pool.Admit(0.1, 1.0);
  EXPECT_TRUE(late.queued);
  EXPECT_TRUE(late.timed_out);
  EXPECT_DOUBLE_EQ(late.done, 3.0);
  // Within deadline: queued but not timed out.
  const ConnectionPool::Admission ok = pool.Admit(2.8, 1.0);
  EXPECT_TRUE(ok.queued);
  EXPECT_FALSE(ok.timed_out);

  const PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.lease_timeouts, 1u);
  EXPECT_EQ(stats.leases_queued, 2u);
}

TEST(ConnectionPoolAdmit, LeaseLatencyChargedPerAdmission) {
  PoolOptions options;
  options.size = 1;
  options.lease_latency_s = 0.125;
  ConnectionPool pool(options);
  EXPECT_DOUBLE_EQ(pool.Admit(0.0, 1.0).done, 1.125);
  EXPECT_DOUBLE_EQ(pool.Admit(2.0, 1.0).done, 3.125);
}

// ----- Synchronous leases --------------------------------------------------

TEST(ConnectionPoolAcquire, ExhaustionQueuesFifoAndDrains) {
  PoolOptions options;
  options.size = 1;
  ConnectionPool pool(options);

  std::vector<int> order;
  Mutex order_mu;
  {
    // Hold the only connection; every queued acquirer must wait.
    ConnectionPool::Lease held = pool.Acquire();
    std::vector<std::thread> threads;
    std::atomic<int> about_to_acquire{0};
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&, i] {
        about_to_acquire.store(i + 1, std::memory_order_release);
        ConnectionPool::Lease lease = pool.Acquire();
        MutexLock lock(order_mu);
        order.push_back(i);
      });
      // Tickets are FIFO by Acquire() call order; space the launches so the
      // call order matches the launch order.
      while (about_to_acquire.load(std::memory_order_acquire) != i + 1) {
        std::this_thread::yield();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    // Dropping `held` here lets the queue drain.
    { ConnectionPool::Lease release = std::move(held); }
    for (std::thread& t : threads) t.join();
  }

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  const PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.leases_granted, 4u);
  EXPECT_EQ(stats.leases_queued, 3u);  // Backpressure, zero failures.
}

// ----- Health probes over a seeded faulty wire -----------------------------

TEST(ConnectionPoolHealth, ProbeFailuresMarkSuspectAndRecycle) {
  BackendOptions options;
  options.pool.size = 1;
  options.pool.probe_every = 1;   // Probe on every lease.
  options.pool.suspect_after = 3;
  auto backend = MakeKvBackend(options);

  service::DirectChannel direct(*backend);
  service::FaultProfile all_lost;
  all_lost.drop_request = 1.0;  // Every probe frame dies on the wire.
  service::FaultInjectingChannel faulty(direct, all_lost, /*seed=*/7);
  service::ChannelHealthProber prober(faulty, /*seed=*/21);
  backend->pool().SetProber(&prober);

  const std::string query =
      EncryptedSql(*backend, "SELECT val FROM kv WHERE id = 5");
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(backend->HandleQuery(query, /*plaintext_result=*/true).ok());
  }

  const PoolStats stats = backend->pool().Stats();
  EXPECT_EQ(stats.probes_sent, 3u);
  EXPECT_EQ(stats.probe_failures, 3u);
  EXPECT_EQ(stats.connections_recycled, 3u);
  EXPECT_TRUE(stats.suspect);  // 3 consecutive failures >= suspect_after.

  // A recycled connection lost its prepared statements: every query had to
  // re-prepare (the probe fires before execution on each lease).
  const StatementCacheStats statements = backend->pool().statement_stats();
  EXPECT_EQ(statements.hits, 0u);
  EXPECT_EQ(statements.misses, 3u);
}

TEST(ConnectionPoolHealth, CleanWireNeverSuspectsAndKeepsStatements) {
  BackendOptions options;
  options.pool.size = 1;
  options.pool.probe_every = 1;
  auto backend = MakeKvBackend(options);

  service::DirectChannel direct(*backend);
  service::ChannelHealthProber prober(direct, /*seed=*/21);
  backend->pool().SetProber(&prober);

  const std::string query =
      EncryptedSql(*backend, "SELECT val FROM kv WHERE id = 5");
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(backend->HandleQuery(query, /*plaintext_result=*/true).ok());
  }

  const PoolStats stats = backend->pool().Stats();
  EXPECT_EQ(stats.probes_sent, 3u);
  EXPECT_EQ(stats.probe_failures, 0u);
  EXPECT_EQ(stats.connections_recycled, 0u);
  EXPECT_FALSE(stats.suspect);
  // Probes ride the real protocol, so they count as traffic on the wire but
  // never as queries on the backend.
  EXPECT_EQ(backend->queries_executed(), 3u);

  const StatementCacheStats statements = backend->pool().statement_stats();
  EXPECT_EQ(statements.misses, 1u);  // Prepared once, reused twice.
  EXPECT_EQ(statements.hits, 2u);
}

TEST(ConnectionPoolHealth, SeededPartialLossIsReproducible) {
  auto run = [](uint64_t seed) {
    BackendOptions options;
    options.pool.size = 2;
    options.pool.probe_every = 2;
    options.pool.suspect_after = 2;
    auto backend = MakeKvBackend(options);
    service::DirectChannel direct(*backend);
    service::FaultProfile lossy;
    lossy.drop_request = 0.4;
    lossy.corrupt_response = 0.2;
    service::FaultInjectingChannel faulty(direct, lossy, seed);
    service::ChannelHealthProber prober(faulty, /*seed=*/5);
    backend->pool().SetProber(&prober);
    const std::string query =
        EncryptedSql(*backend, "SELECT val FROM kv WHERE id = 9");
    for (int i = 0; i < 60; ++i) {
      EXPECT_TRUE(
          backend->HandleQuery(query, /*plaintext_result=*/true).ok());
    }
    return backend->pool().Stats();
  };

  const PoolStats a = run(/*seed=*/13);
  const PoolStats b = run(/*seed=*/13);
  EXPECT_GT(a.probes_sent, 0u);
  EXPECT_GT(a.probe_failures, 0u);  // 40% drop + 20% corruption must bite.
  EXPECT_LT(a.probe_failures, a.probes_sent);  // ...but not on every probe.
  // Same seed, same faults, same verdicts — the whole probe history is
  // reproducible.
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.probe_failures, b.probe_failures);
  EXPECT_EQ(a.connections_recycled, b.connections_recycled);
  EXPECT_EQ(a.suspect, b.suspect);
}

// ----- Concurrency soak: zero lost updates under churn ---------------------

// Four writer threads hammer a 2-connection pool while every lease probes a
// lossy wire (recycling connections and dropping prepared statements along
// the way). Each thread owns a disjoint key range and retries a slice of its
// updates with the same nonce. Afterwards the database must hold exactly the
// last value each thread wrote (the oracle), every distinct update applied
// exactly once.
TEST(ConnectionPoolSoak, ZeroLostUpdatesUnderProbeChurn) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  constexpr int kKeysPerThread = 100;

  BackendOptions options;
  options.pool.size = 2;
  options.pool.probe_every = 7;
  options.pool.suspect_after = 3;
  auto backend = MakeKvBackend(options);

  service::DirectChannel direct(*backend);
  service::FaultProfile lossy;
  lossy.drop_request = 0.5;  // Probes fail often: constant recycle churn.
  service::FaultInjectingChannel faulty(direct, lossy, /*seed=*/3);
  service::ChannelHealthProber prober(faulty, /*seed=*/11);
  backend->pool().SetProber(&prober);

  std::vector<std::vector<int64_t>> oracle(
      kThreads, std::vector<int64_t>(kKeysPerThread, 0));
  std::atomic<uint64_t> retries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int64_t key = t * kKeysPerThread +
                            static_cast<int64_t>(rng.NextBelow(kKeysPerThread));
        const int64_t value = t * 1000000 + i + 1;
        const uint64_t nonce =
            static_cast<uint64_t>(t) * kOpsPerThread + i + 1;
        const std::string update = EncryptedSql(
            *backend, "UPDATE kv SET val = " + std::to_string(value) +
                          " WHERE id = " + std::to_string(key));
        ASSERT_TRUE(backend->HandleUpdate(update, nonce).ok());
        if (rng.NextBelow(4) == 0) {
          // Client retry of the same frame+nonce: must not double-apply.
          ASSERT_TRUE(backend->HandleUpdate(update, nonce).ok());
          retries.fetch_add(1, std::memory_order_relaxed);
        }
        oracle[t][key - t * kKeysPerThread] = value;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactly-once accounting.
  EXPECT_EQ(backend->updates_applied(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(backend->duplicates_suppressed(),
            retries.load(std::memory_order_relaxed));

  // Oracle check: re-play each key's last written value into a fresh,
  // fault-free backend and require byte-identical query results — nothing
  // lost, nothing applied twice, no key touched by churn artifacts.
  auto clean = MakeKvBackend();
  for (int t = 0; t < kThreads; ++t) {
    for (int k = 0; k < kKeysPerThread; ++k) {
      const int64_t key = t * kKeysPerThread + k;
      ASSERT_TRUE(clean
                      ->HandleUpdate(EncryptedSql(
                          *clean, "UPDATE kv SET val = " +
                                      std::to_string(oracle[t][k]) +
                                      " WHERE id = " + std::to_string(key)))
                      .ok());
    }
  }
  for (int64_t key = 0; key < kThreads * kKeysPerThread; ++key) {
    const std::string sql =
        "SELECT val FROM kv WHERE id = " + std::to_string(key);
    auto got = backend->HandleQuery(EncryptedSql(*backend, sql), true);
    auto want = clean->HandleQuery(EncryptedSql(*clean, sql), true);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(*got, *want) << "key " << key;
  }

  const PoolStats stats = backend->pool().Stats();
  EXPECT_GT(stats.probes_sent, 0u);
  EXPECT_GT(stats.probe_failures, 0u);
  EXPECT_GT(stats.connections_recycled, 0u);
  EXPECT_EQ(stats.leases_granted,
            backend->queries_executed() + backend->updates_applied() +
                backend->duplicates_suppressed());
}

// ----- Shared host pool ----------------------------------------------------

TEST(BackendHostTest, TenantsShareOnePoolAndStatementCachesStaySeparate) {
  PoolOptions pool_options;
  pool_options.size = 1;
  BackendHost host(pool_options);

  auto alpha = MakeKvBackend();
  auto beta = MakeKvBackend();
  host.AttachTenant(alpha.get());
  host.AttachTenant(beta.get());
  EXPECT_EQ(host.num_tenants(), 2u);
  EXPECT_EQ(&alpha->pool(), &host.pool());
  EXPECT_EQ(&beta->pool(), &host.pool());

  const std::string sql = "SELECT val FROM kv WHERE id = 1";
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(
        alpha->HandleQuery(EncryptedSql(*alpha, sql), true).ok());
    EXPECT_TRUE(beta->HandleQuery(EncryptedSql(*beta, sql), true).ok());
  }

  // One shared connection, two tenants: the statement cache keys on tenant
  // identity, so each tenant prepared its own program once (2 misses) and
  // reused it (2 hits) — no cross-tenant statement sharing.
  const StatementCacheStats statements = host.pool().statement_stats();
  EXPECT_EQ(statements.misses, 2u);
  EXPECT_EQ(statements.hits, 2u);
  EXPECT_EQ(statements.entries, 2u);
  EXPECT_EQ(host.pool().Stats().leases_granted, 4u);
  EXPECT_EQ(host.catalogs_loaded(), 2u);  // One lazy load per tenant.
}

}  // namespace
}  // namespace dssp::backend
