// Service-level consistency oracle: whatever the exposure configuration,
// the DSSP must NEVER serve a stale answer. We run real traces through the
// full stack and, after every page, re-issue a panel of previously-seen
// query instances through the DSSP and compare each answer against direct
// execution on the master database at that moment. This exercises the whole
// pipeline — cache keys, group-indexed invalidation, the mixed strategy
// dispatch, encryption round trips — under the exposure assignment the
// methodology actually produces.

#include <gtest/gtest.h>

#include <map>

#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "sim/workload.h"
#include "workloads/application.h"

namespace dssp::service {
namespace {

struct Panel {
  std::string template_id;
  std::vector<sql::Value> params;
};

class ConsistencyOracleTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ConsistencyOracleTest, DsspNeverServesStaleAnswers) {
  const std::string app_name = std::get<0>(GetParam());
  const int exposure_mode = std::get<1>(GetParam());

  DsspNode node;
  ScalableApp app(app_name, &node,
                  crypto::KeyRing::FromPassphrase("consistency"));
  auto workload = workloads::MakeApplication(app_name);
  ASSERT_TRUE(workload->Setup(app, 0.25, 41).ok());
  ASSERT_TRUE(app.Finalize().ok());

  // Exposure: 0 = full view, 1 = methodology outcome, 2 = uniform
  // template-level (heavy encryption).
  if (exposure_mode == 1) {
    const auto& catalog = app.home().database().catalog();
    ASSERT_TRUE(
        app.SetExposure(analysis::RunMethodology(
                            app.templates(), catalog,
                            workload->CompulsoryEncryption(catalog))
                            .final)
            .ok());
  } else if (exposure_mode == 2) {
    auto exposure = analysis::ExposureAssignment::FullExposure(
        app.templates().num_queries(), app.templates().num_updates());
    for (auto& level : exposure.query_levels) {
      level = analysis::ExposureLevel::kTemplate;
    }
    for (auto& level : exposure.update_levels) {
      level = analysis::ExposureLevel::kTemplate;
    }
    ASSERT_TRUE(app.SetExposure(exposure).ok());
  }

  auto session = workload->NewSession(8);
  Rng rng(55);
  std::map<std::string, Panel> panel;  // Distinct seen query instances.
  constexpr size_t kPanelCap = 60;
  size_t checks = 0;

  for (int page = 0; page < 120; ++page) {
    for (const sim::DbOp& op : session->NextPage(rng)) {
      if (op.is_update) {
        ASSERT_TRUE(app.Update(op.template_id, op.params).ok());
        continue;
      }
      ASSERT_TRUE(app.Query(op.template_id, op.params).ok());
      if (panel.size() < kPanelCap) {
        const size_t index = app.templates().QueryIndex(op.template_id);
        const std::string key =
            sql::ToSql(app.templates().queries()[index].Bind(op.params));
        panel.emplace(key, Panel{op.template_id, op.params});
      }
    }

    // Audit the panel: DSSP answers vs. master database truth.
    for (const auto& [key, probe] : panel) {
      auto via_dssp = app.Query(probe.template_id, probe.params);
      ASSERT_TRUE(via_dssp.ok());
      const size_t index = app.templates().QueryIndex(probe.template_id);
      auto direct = app.home().database().ExecuteQuery(
          app.templates().queries()[index].Bind(probe.params));
      ASSERT_TRUE(direct.ok());
      EXPECT_TRUE(via_dssp->SameResult(*direct))
          << app_name << " exposure_mode=" << exposure_mode << " " << key;
      ++checks;
    }
  }
  EXPECT_GT(checks, 1000u);
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
  static constexpr const char* kModes[] = {"view", "methodology",
                                           "template"};
  return std::get<0>(info.param) + "_" + kModes[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConsistencyOracleTest,
    ::testing::Combine(::testing::Values("toystore", "auction", "bboard",
                                         "bookstore"),
                       ::testing::Values(0, 1, 2)),
    CaseName);

}  // namespace
}  // namespace dssp::service
