// Static application auditor tests:
//
//  1. One synthetic application per finding code, asserting the code, the
//     severity, and the subject the auditor reports (PERF-SOLVER-FALLBACK is
//     unreachable from parser-validated templates — see its test).
//  2. The statement-level correctness helper on hand-mutated ASTs (the
//     parser cannot produce an unused parameter: it assigns indexes by
//     appearance).
//  3. Clean runs: all four paper workloads audit with zero error-severity
//     findings under the methodology's recommended exposure (the committed
//     tools/baselines/*.json are byte-diffed by CI; this guards the
//     zero-error claim those baselines document).
//  4. Strict registration: a DsspNode with SetStrictRegistration(true)
//     refuses an application with error findings and accepts it again once
//     strict mode is off.
//  5. JSON schema stability markers.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/audit.h"
#include "analysis/methodology.h"
#include "catalog/schema.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/node.h"
#include "sql/parser.h"
#include "templates/template.h"
#include "templates/template_set.h"
#include "workloads/application.h"

namespace dssp::analysis {
namespace {

using templates::QueryTemplate;
using templates::TemplateSet;
using templates::UpdateTemplate;

catalog::Catalog TestCatalog() {
  catalog::Catalog catalog;
  DSSP_CHECK(catalog
                 .AddTable(catalog::TableSchema(
                     "t1",
                     {{"a", catalog::ColumnType::kInt64},
                      {"b", catalog::ColumnType::kInt64},
                      {"c", catalog::ColumnType::kString}},
                     {"a"}))
                 .ok());
  DSSP_CHECK(catalog
                 .AddTable(catalog::TableSchema(
                     "t2",
                     {{"x", catalog::ColumnType::kInt64},
                      {"y", catalog::ColumnType::kString}},
                     {"x"}))
                 .ok());
  return catalog;
}

TemplateSet MakeTemplates(const catalog::Catalog& catalog,
                          const std::vector<std::string>& queries,
                          const std::vector<std::string>& updates) {
  TemplateSet set;
  for (const std::string& sql : queries) {
    DSSP_CHECK_OK(set.AddQuerySql(sql, catalog));
  }
  for (const std::string& sql : updates) {
    DSSP_CHECK_OK(set.AddUpdateSql(sql, catalog));
  }
  return set;
}

// The finding with `code` and `subject`, or nullptr.
const AuditFinding* Find(const AuditReport& report, std::string_view code,
                         std::string_view subject) {
  for (const AuditFinding& finding : report.findings) {
    if (finding.code == code && finding.subject == subject) return &finding;
  }
  return nullptr;
}

bool HasCode(const AuditReport& report, std::string_view code) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const AuditFinding& f) { return f.code == code; });
}

// ----- Correctness lens ----------------------------------------------------

TEST(AuditCorrectness, TypeMismatchColumnVsLiteral) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set =
      MakeTemplates(catalog, {"SELECT * FROM t1 WHERE c = 5"}, {});
  const AuditReport report = AuditApplication(set, catalog);
  const AuditFinding* finding = Find(report, "COR-TYPE-MISMATCH", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kError);
  EXPECT_EQ(finding->lens, AuditLens::kCorrectness);
  EXPECT_FALSE(report.ok());
}

TEST(AuditCorrectness, TypeMismatchJoinColumns) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1, t2 WHERE t1.a = t2.y AND t1.a = ?"}, {});
  const AuditReport report = AuditApplication(set, catalog);
  const AuditFinding* finding = Find(report, "COR-TYPE-MISMATCH", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_NE(finding->message.find("joins"), std::string::npos);
}

TEST(AuditCorrectness, TypeMismatchInsertAndSet) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {},
      {"INSERT INTO t1 (a, b, c) VALUES (?, ?, 7)",
       "UPDATE t1 SET c = 5 WHERE a = ?"});
  const AuditReport report = AuditApplication(set, catalog);
  EXPECT_NE(Find(report, "COR-TYPE-MISMATCH", "U1"), nullptr);
  EXPECT_NE(Find(report, "COR-TYPE-MISMATCH", "U2"), nullptr);
  EXPECT_EQ(report.num_errors, 2u);
}

TEST(AuditCorrectness, DeadTemplateUnsatisfiableRange) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE a > 10 AND a < 5 AND b = ?"}, {});
  const AuditReport report = AuditApplication(set, catalog);
  const AuditFinding* finding = Find(report, "COR-DEAD-TEMPLATE", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kError);
  EXPECT_NE(finding->message.find("unsatisfiable"), std::string::npos);
}

TEST(AuditCorrectness, DeadTemplateFalseLiteralConjunct) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set =
      MakeTemplates(catalog, {"SELECT * FROM t1 WHERE 1 = 2 AND a = ?"}, {});
  const AuditReport report = AuditApplication(set, catalog);
  const AuditFinding* finding = Find(report, "COR-DEAD-TEMPLATE", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_NE(finding->message.find("always false"), std::string::npos);
}

TEST(AuditCorrectness, ConstConjunctIsInfo) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set =
      MakeTemplates(catalog, {"SELECT * FROM t1 WHERE 1 = 1 AND a = ?"}, {});
  const AuditReport report = AuditApplication(set, catalog);
  const AuditFinding* finding = Find(report, "COR-CONST-CONJUNCT", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kInfo);
  EXPECT_TRUE(report.ok());
}

TEST(AuditCorrectness, UnusedParameterViaHandMutatedAst) {
  const catalog::Catalog catalog = TestCatalog();
  auto parsed = sql::Parse("SELECT * FROM t1 WHERE a = ?");
  ASSERT_TRUE(parsed.ok());
  sql::Statement statement = std::move(*parsed);
  statement.num_params = 3;  // ?1 and ?2 now exist but are never used.
  std::vector<AuditFinding> findings;
  AuditStatementCorrectness(statement, catalog, "Q9", &findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].code, "COR-UNUSED-PARAM");
  EXPECT_EQ(findings[0].subject, "Q9 ?1");
  EXPECT_EQ(findings[0].severity, AuditSeverity::kWarning);
  EXPECT_EQ(findings[1].subject, "Q9 ?2");
}

TEST(AuditCorrectness, CleanTemplatesProduceNoFindings) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE a = ?"},
      {"INSERT INTO t1 (a, b, c) VALUES (?, ?, ?)", "DELETE FROM t1 WHERE a = ?"});
  const AuditReport report = AuditApplication(set, catalog);
  EXPECT_FALSE(HasCode(report, "COR-TYPE-MISMATCH"));
  EXPECT_FALSE(HasCode(report, "COR-DEAD-TEMPLATE"));
  EXPECT_FALSE(HasCode(report, "COR-UNUSED-PARAM"));
  EXPECT_TRUE(report.ok());
}

// ----- Performance lens ----------------------------------------------------

TEST(AuditPerformance, NoDiscriminatorScanWarning) {
  const catalog::Catalog catalog = TestCatalog();
  // Q1 has no `column op ?` conjunct, so no discriminator; the insert into
  // t1 makes it reachable. Q2 is indexable and must not be reported.
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1", "SELECT * FROM t1 WHERE a = ?"},
      {"INSERT INTO t1 (a, b, c) VALUES (?, ?, ?)"});
  const AuditReport report = AuditApplication(set, catalog);
  const AuditFinding* finding = Find(report, "PERF-NO-DISCRIMINATOR", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kWarning);
  EXPECT_EQ(Find(report, "PERF-NO-DISCRIMINATOR", "Q2"), nullptr);
}

TEST(AuditPerformance, NoDiscriminatorSilentWithoutRelevantUpdates) {
  const catalog::Catalog catalog = TestCatalog();
  // The only update touches t2, which is ignorable for Q1: scanning cost
  // can never be paid, so the finding is suppressed.
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1"}, {"DELETE FROM t2 WHERE x = ?"});
  EXPECT_FALSE(
      HasCode(AuditApplication(set, catalog), "PERF-NO-DISCRIMINATOR"));
}

TEST(AuditPerformance, AlwaysInvalidateInfoEscalatesWhenHot) {
  const catalog::Catalog catalog = TestCatalog();
  // The t1 slot is constrained only by the join conjunct, so every inserted
  // t1 row is admitted for every binding: statement-level refinement cannot
  // help and the pair compiles to kAlwaysInvalidate.
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1, t2 WHERE t1.a = t2.x AND t2.y = ?"},
      {"INSERT INTO t1 (a, b, c) VALUES (?, ?, ?)"});
  {
    const AuditReport report = AuditApplication(set, catalog);
    const AuditFinding* finding = Find(report, "PERF-ALWAYS-INVALIDATE", "U1");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, AuditSeverity::kInfo);
  }
  {
    AuditOptions options;
    options.hot_updates = {"U1"};
    const AuditReport report = AuditApplication(set, catalog, options);
    const AuditFinding* finding = Find(report, "PERF-ALWAYS-INVALIDATE", "U1");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, AuditSeverity::kWarning);
    EXPECT_NE(finding->message.find("declared hot"), std::string::npos);
  }
}

TEST(AuditPerformance, UnplannedQueryInfoForUncompilableTemplate) {
  const catalog::Catalog catalog = TestCatalog();
  // Q1's string-vs-int conjunct is rejected by the vectorized query
  // compiler (the interpreter raises the same error, but only at
  // execution time, so registration succeeds); Q2 compiles and must not
  // be reported.
  const TemplateSet set = MakeTemplates(
      catalog,
      {"SELECT * FROM t1 WHERE c = 5 AND a = ?",
       "SELECT * FROM t1 WHERE a = ?"},
      {});
  const AuditReport report = AuditApplication(set, catalog);
  const AuditFinding* finding = Find(report, "PERF-UNPLANNED-QUERY", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kInfo);
  EXPECT_EQ(finding->lens, AuditLens::kPerformance);
  EXPECT_NE(finding->message.find("interpreter"), std::string::npos);
  EXPECT_EQ(Find(report, "PERF-UNPLANNED-QUERY", "Q2"), nullptr);
}

TEST(AuditPerformance, UnpreparedTemplateInfoForUncompilableTemplate) {
  const catalog::Catalog catalog = TestCatalog();
  // A template with no compiled program can never be server-side prepared:
  // every execution misses the prepared-statement cache. Q2 compiles (and
  // so prepares once per connection) and must not be reported.
  const TemplateSet set = MakeTemplates(
      catalog,
      {"SELECT * FROM t1 WHERE c = 5 AND a = ?",
       "SELECT * FROM t1 WHERE a = ?"},
      {});
  const AuditReport report = AuditApplication(set, catalog);
  const AuditFinding* finding = Find(report, "PERF-UNPREPARED-TEMPLATE", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kInfo);
  EXPECT_EQ(finding->lens, AuditLens::kPerformance);
  EXPECT_NE(finding->message.find("prepared-statement cache"),
            std::string::npos);
  EXPECT_EQ(Find(report, "PERF-UNPREPARED-TEMPLATE", "Q2"), nullptr);
}

TEST(AuditPerformance, BlindUpdateWarning) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE a = ?"},
      {"DELETE FROM t1 WHERE a = ?"});
  ExposureAssignment exposure = ExposureAssignment::FullExposure(1, 1);
  exposure.update_levels[0] = ExposureLevel::kBlind;
  AuditOptions options;
  options.exposure = &exposure;
  const AuditReport report = AuditApplication(set, catalog, options);
  const AuditFinding* finding = Find(report, "PERF-BLIND-UPDATE", "U1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kWarning);
}

TEST(AuditPerformance, SolverFallbackUnreachableOnPaperWorkloads) {
  // PERF-SOLVER-FALLBACK mirrors PlanKind::kSolverFallback, which the plan
  // compiler emits only for statement shapes the parser cannot produce
  // (mismatched INSERT/SET lists). Assert the absence claim the finding's
  // reachability rests on: no paper workload compiles to a fallback pair.
  for (const char* name : {"toystore", "auction", "bboard", "bookstore"}) {
    service::DsspNode node;
    service::ScalableApp app(name, &node,
                             crypto::KeyRing::FromPassphrase("audit-test"));
    auto workload = workloads::MakeApplication(name);
    DSSP_CHECK_OK(workload->Setup(app, /*scale=*/0.05, /*seed=*/1));
    DSSP_CHECK_OK(app.Finalize());
    const auto& catalog = app.home().database().catalog();
    const InvalidationPlan plan =
        InvalidationPlan::Compile(app.templates(), catalog);
    EXPECT_EQ(plan.Summarize().solver_fallback, 0u) << name;
    EXPECT_FALSE(
        HasCode(AuditApplication(app.templates(), catalog),
                "PERF-SOLVER-FALLBACK"))
        << name;
  }
}

// ----- Security lens -------------------------------------------------------

TEST(AuditSecurity, ViewExposedUpdateIsError) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE a = ?"},
      {"DELETE FROM t1 WHERE a = ?"});
  ExposureAssignment exposure = ExposureAssignment::FullExposure(1, 1);
  exposure.update_levels[0] = ExposureLevel::kView;
  AuditOptions options;
  options.exposure = &exposure;
  const AuditReport report = AuditApplication(set, catalog, options);
  const AuditFinding* finding = Find(report, "SEC-VIEW-UPDATE", "U1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kError);
  EXPECT_FALSE(report.ok());
}

TEST(AuditSecurity, EqualityLeakOnEncryptedParams) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE c = ?"},
      {"UPDATE t1 SET b = ? WHERE a = ?"});
  ExposureAssignment exposure = ExposureAssignment::FullEncryption(1, 1);
  exposure.query_levels[0] = ExposureLevel::kTemplate;
  exposure.update_levels[0] = ExposureLevel::kTemplate;
  AuditOptions options;
  options.exposure = &exposure;
  const AuditReport report = AuditApplication(set, catalog, options);
  const AuditFinding* leak = Find(report, "SEC-EQ-LEAK", "t1.c");
  ASSERT_NE(leak, nullptr);
  EXPECT_EQ(leak->severity, AuditSeverity::kWarning);
  EXPECT_NE(leak->message.find("Q1"), std::string::npos);
  // The SET target and the predicate column of the template-level update
  // leak too.
  EXPECT_NE(Find(report, "SEC-EQ-LEAK", "t1.a"), nullptr);
  EXPECT_NE(Find(report, "SEC-EQ-LEAK", "t1.b"), nullptr);
}

TEST(AuditSecurity, PlaintextParamAndResultExposedInfos) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set =
      MakeTemplates(catalog, {"SELECT a, c FROM t1 WHERE b = ?"}, {});
  ExposureAssignment exposure = ExposureAssignment::FullExposure(1, 0);
  AuditOptions options;
  options.exposure = &exposure;
  const AuditReport report = AuditApplication(set, catalog, options);
  EXPECT_NE(Find(report, "SEC-PLAINTEXT-PARAM", "t1.b"), nullptr);
  EXPECT_NE(Find(report, "SEC-RESULT-EXPOSED", "t1.a"), nullptr);
  EXPECT_NE(Find(report, "SEC-RESULT-EXPOSED", "t1.c"), nullptr);
  // Dropped wholesale by include_info = false.
  AuditOptions no_info = options;
  no_info.include_info = false;
  const AuditReport filtered = AuditApplication(set, catalog, no_info);
  EXPECT_FALSE(HasCode(filtered, "SEC-PLAINTEXT-PARAM"));
  EXPECT_FALSE(HasCode(filtered, "SEC-RESULT-EXPOSED"));
  EXPECT_EQ(filtered.num_infos, 0u);
}

TEST(AuditSecurity, OverexposedWhenReductionIsFree) {
  const catalog::Catalog catalog = TestCatalog();
  // The only update touches t2 and is ignorable for Q1, so the IPM proves
  // every reduction free: full exposure is pure overexposure.
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE a = ?"},
      {"DELETE FROM t2 WHERE x = ?"});
  const ExposureAssignment exposure = ExposureAssignment::FullExposure(1, 1);
  AuditOptions options;
  options.exposure = &exposure;
  const AuditReport report = AuditApplication(set, catalog, options);
  const AuditFinding* finding = Find(report, "SEC-OVEREXPOSED", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kWarning);
  EXPECT_NE(Find(report, "SEC-OVEREXPOSED", "U1"), nullptr);
}

TEST(AuditSecurity, SensitiveExposedBeyondPolicyCapIsError) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set =
      MakeTemplates(catalog, {"SELECT * FROM t1 WHERE a = ?"}, {});
  CompulsoryPolicy policy;
  policy.MarkTableSensitive(catalog, "t1");
  const ExposureAssignment exposure = ExposureAssignment::FullExposure(1, 0);
  AuditOptions options;
  options.exposure = &exposure;
  options.policy = &policy;
  const AuditReport report = AuditApplication(set, catalog, options);
  const AuditFinding* finding = Find(report, "SEC-SENSITIVE-EXPOSED", "Q1");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, AuditSeverity::kError);
  EXPECT_FALSE(report.ok());
}

// ----- Paper workloads are clean / baselined -------------------------------

TEST(AuditWorkloads, MethodologyExposureAuditsWithZeroErrors) {
  for (const char* name : {"toystore", "auction", "bboard", "bookstore"}) {
    service::DsspNode node;
    service::ScalableApp app(name, &node,
                             crypto::KeyRing::FromPassphrase("audit-test"));
    auto workload = workloads::MakeApplication(name);
    DSSP_CHECK_OK(workload->Setup(app, /*scale=*/0.05, /*seed=*/1));
    DSSP_CHECK_OK(app.Finalize());
    const auto& catalog = app.home().database().catalog();
    const CompulsoryPolicy policy = workload->CompulsoryEncryption(catalog);
    const SecurityReport security =
        RunMethodology(app.templates(), catalog, policy);
    AuditOptions options;
    options.exposure = &security.final;
    options.policy = &policy;
    const AuditReport report =
        AuditApplication(app.templates(), catalog, options);
    EXPECT_EQ(report.num_errors, 0u)
        << name << ":\n"
        << report.ToText();
    // The methodology's own output can never be over- or under-exposed
    // relative to itself.
    EXPECT_FALSE(HasCode(report, "SEC-OVEREXPOSED")) << name;
    EXPECT_FALSE(HasCode(report, "SEC-SENSITIVE-EXPOSED")) << name;
    // Every paper-workload query template compiles to a vectorized
    // program: the home servers never fall back to the interpreter, and
    // every template is preparable (no permanent statement-cache misses).
    EXPECT_FALSE(HasCode(report, "PERF-UNPLANNED-QUERY")) << name;
    EXPECT_FALSE(HasCode(report, "PERF-UNPREPARED-TEMPLATE")) << name;
  }
}

// ----- Strict registration -------------------------------------------------

TEST(AuditStrictRegistration, RefusesErrorFindingsAndListsThem) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE a > 10 AND a < 5 AND b = ?"}, {});

  service::DsspNode strict;
  strict.SetStrictRegistration(true);
  const Status refused = strict.RegisterApp("dead", &catalog, &set);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("COR-DEAD-TEMPLATE"), std::string::npos);
  EXPECT_FALSE(strict.HasApp("dead"));

  // Warnings alone do not block, and strict mode off never blocks.
  service::DsspNode lenient;
  EXPECT_TRUE(lenient.RegisterApp("dead", &catalog, &set).ok());

  const TemplateSet clean =
      MakeTemplates(catalog, {"SELECT * FROM t1 WHERE a = ?"}, {});
  EXPECT_TRUE(strict.RegisterApp("clean", &catalog, &clean).ok());
  EXPECT_TRUE(strict.HasApp("clean"));
}

// ----- Report formats ------------------------------------------------------

TEST(AuditReportFormat, JsonSchemaMarkersAndEscaping) {
  const catalog::Catalog catalog = TestCatalog();
  // The contradictory constraints force a dead-template finding whose
  // message embeds the literal with the raw double quote.
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE c = 'a\"b' AND c = 'z' AND a = ?"},
      {});
  const AuditReport report = AuditApplication(set, catalog);
  ASSERT_TRUE(HasCode(report, "COR-DEAD-TEMPLATE"));
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"audit_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"summary\": {\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
  // The quote inside the literal must be escaped, never raw.
  EXPECT_EQ(json.find("a\"b"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
}

TEST(AuditReportFormat, TextGroupsByLensAndCounts) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE c = 5", "SELECT * FROM t1"},
      {"INSERT INTO t1 (a, b, c) VALUES (?, ?, ?)"});
  const AuditReport report = AuditApplication(set, catalog);
  const std::string text = report.ToText();
  EXPECT_NE(text.find("== performance =="), std::string::npos);
  EXPECT_NE(text.find("== correctness =="), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(AuditReportFormat, FindingsAreSortedDeterministically) {
  const catalog::Catalog catalog = TestCatalog();
  const TemplateSet set = MakeTemplates(
      catalog, {"SELECT * FROM t1 WHERE c = 5", "SELECT * FROM t2 WHERE y = 1"},
      {});
  const AuditReport report = AuditApplication(set, catalog);
  for (size_t i = 1; i < report.findings.size(); ++i) {
    const AuditFinding& a = report.findings[i - 1];
    const AuditFinding& b = report.findings[i];
    EXPECT_LE(std::tie(a.lens, a.code, a.subject, a.message),
              std::tie(b.lens, b.code, b.subject, b.message));
  }
}

}  // namespace
}  // namespace dssp::analysis
