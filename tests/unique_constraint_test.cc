// UNIQUE single-column constraints: catalog validation, engine enforcement
// (insert and modify), and the Section 4.5-style analysis refinement (a
// cached instance of "unique_col = ?" pins an existing value, so an
// insertion can never affect it).

#include <gtest/gtest.h>

#include "analysis/ipm.h"
#include "engine/database.h"
#include "templates/template.h"

namespace dssp {
namespace {

using catalog::ColumnType;
using catalog::TableSchema;
using sql::Value;

class UniqueConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema(
                       "accounts",
                       {{"id", ColumnType::kInt64},
                        {"email", ColumnType::kString},
                        {"balance", ColumnType::kInt64}},
                       {"id"}, /*foreign_keys=*/{},
                       /*unique_columns=*/{"email"}))
                    .ok());
    ASSERT_TRUE(db_.Update("INSERT INTO accounts (id, email, balance) "
                           "VALUES (1, 'a@x.com', 10)")
                    .ok());
    ASSERT_TRUE(db_.Update("INSERT INTO accounts (id, email, balance) "
                           "VALUES (2, 'b@x.com', 20)")
                    .ok());
  }

  engine::Database db_;
};

TEST_F(UniqueConstraintTest, CatalogValidatesUniqueColumns) {
  catalog::Catalog catalog;
  EXPECT_FALSE(catalog
                   .AddTable(TableSchema("t", {{"a", ColumnType::kInt64}},
                                         {"a"}, {}, {"ghost"}))
                   .ok());
  EXPECT_TRUE(catalog
                  .AddTable(TableSchema("t", {{"a", ColumnType::kInt64}},
                                        {"a"}, {}, {"a"}))
                  .ok());
}

TEST_F(UniqueConstraintTest, IsUniqueColumnCoversPkAndDeclared) {
  const catalog::TableSchema& schema = db_.catalog().GetTable("accounts");
  EXPECT_TRUE(schema.IsUniqueColumn("id"));      // Single-column PK.
  EXPECT_TRUE(schema.IsUniqueColumn("email"));   // Declared UNIQUE.
  EXPECT_FALSE(schema.IsUniqueColumn("balance"));
}

TEST_F(UniqueConstraintTest, InsertRejectsDuplicates) {
  const auto dup = db_.Update(
      "INSERT INTO accounts (id, email, balance) VALUES (3, 'a@x.com', 0)");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);
  // A fresh value is fine.
  EXPECT_TRUE(db_.Update("INSERT INTO accounts (id, email, balance) "
                         "VALUES (3, 'c@x.com', 0)")
                  .ok());
}

TEST_F(UniqueConstraintTest, MultipleNullsAreAllowed) {
  EXPECT_TRUE(db_.Update("INSERT INTO accounts (id, email, balance) "
                         "VALUES (3, NULL, 0)")
                  .ok());
  EXPECT_TRUE(db_.Update("INSERT INTO accounts (id, email, balance) "
                         "VALUES (4, NULL, 0)")
                  .ok());
}

TEST_F(UniqueConstraintTest, ModifyRejectsStealingAValue) {
  const auto steal =
      db_.Update("UPDATE accounts SET email = 'a@x.com' WHERE id = 2");
  ASSERT_FALSE(steal.ok());
  EXPECT_EQ(steal.status().code(), StatusCode::kConstraintViolation);
  // The victim row is untouched (atomic validation).
  const auto check = db_.Query(
      "SELECT email FROM accounts WHERE id = 2");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows()[0][0], Value("b@x.com"));
}

TEST_F(UniqueConstraintTest, ModifyAllowsSelfAssignment) {
  // Re-assigning a row its own unique value is legal.
  EXPECT_TRUE(
      db_.Update("UPDATE accounts SET email = 'a@x.com' WHERE id = 1").ok());
}

TEST_F(UniqueConstraintTest, ModifyRejectsFanOutToUniqueColumn) {
  // Assigning one unique value to several rows at once is a violation even
  // if the value is currently unused.
  const auto fan_out =
      db_.Update("UPDATE accounts SET email = 'z@x.com' WHERE balance >= 0");
  ASSERT_FALSE(fan_out.ok());
  EXPECT_EQ(fan_out.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(UniqueConstraintTest, DeleteFreesTheValue) {
  ASSERT_TRUE(db_.Update("DELETE FROM accounts WHERE id = 1").ok());
  EXPECT_TRUE(db_.Update("INSERT INTO accounts (id, email, balance) "
                         "VALUES (5, 'a@x.com', 0)")
                  .ok());
}

TEST_F(UniqueConstraintTest, AnalysisTreatsUniqueEqualityLikePk) {
  const catalog::Catalog& catalog = db_.catalog();
  auto insert = templates::UpdateTemplate::Create(
      "U", "INSERT INTO accounts (id, email, balance) VALUES (?, ?, ?)",
      catalog);
  ASSERT_TRUE(insert.ok());

  // unique_col = ? pins an existing row: the insertion is irrelevant.
  auto by_email = templates::QueryTemplate::Create(
      "Q", "SELECT balance FROM accounts WHERE email = ?", catalog);
  ASSERT_TRUE(by_email.ok());
  EXPECT_TRUE(
      analysis::InsertionIrrelevantByConstraints(*insert, *by_email,
                                                 catalog));
  EXPECT_TRUE(analysis::CharacterizePair(*insert, *by_email, catalog)
                  .a_is_zero);

  // A non-unique equality gives no such protection.
  auto by_balance = templates::QueryTemplate::Create(
      "Q", "SELECT email FROM accounts WHERE balance = ?", catalog);
  ASSERT_TRUE(by_balance.ok());
  EXPECT_FALSE(
      analysis::InsertionIrrelevantByConstraints(*insert, *by_balance,
                                                 catalog));
}

}  // namespace
}  // namespace dssp
