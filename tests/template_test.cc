#include <gtest/gtest.h>

#include "templates/template.h"
#include "templates/template_set.h"
#include "workloads/toystore.h"

namespace dssp::templates {
namespace {

using workloads::MakeToystore;

AttributeSet Attrs(std::initializer_list<AttributeId> list) {
  return AttributeSet(list);
}

class TemplateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bundle = MakeToystore();
    ASSERT_TRUE(bundle.ok());
    db_ = std::move(bundle->db);
    templates_ = std::move(bundle->templates);
  }

  const catalog::Catalog& catalog() const { return db_->catalog(); }

  QueryTemplate Query(const std::string& sql) {
    auto tmpl = QueryTemplate::Create("Qx", sql, catalog());
    EXPECT_TRUE(tmpl.ok()) << sql << ": " << tmpl.status().ToString();
    return std::move(tmpl).value();
  }

  UpdateTemplate Update(const std::string& sql) {
    auto tmpl = UpdateTemplate::Create("Ux", sql, catalog());
    EXPECT_TRUE(tmpl.ok()) << sql << ": " << tmpl.status().ToString();
    return std::move(tmpl).value();
  }

  std::unique_ptr<engine::Database> db_;
  TemplateSet templates_;
};

// ----- Attribute sets (paper Section 4.1 worked examples). -----

TEST_F(TemplateTest, ToystoreQ1AttributeSets) {
  // S(Q1) = {toys.toy_name}, P(Q1) = {toys.toy_id}.
  const QueryTemplate* q1 = templates_.FindQuery("Q1");
  ASSERT_NE(q1, nullptr);
  EXPECT_EQ(q1->selection_attributes(), Attrs({{"toys", "toy_name"}}));
  EXPECT_EQ(q1->preserved_attributes(), Attrs({{"toys", "toy_id"}}));
}

TEST_F(TemplateTest, ToystoreU1AttributeSets) {
  // S(U1) = {toys.toy_id}, M(U1) = all attributes of toys.
  const UpdateTemplate* u1 = templates_.FindUpdate("U1");
  ASSERT_NE(u1, nullptr);
  EXPECT_EQ(u1->update_class(), UpdateClass::kDeletion);
  EXPECT_EQ(u1->selection_attributes(), Attrs({{"toys", "toy_id"}}));
  EXPECT_EQ(u1->modified_attributes(),
            Attrs({{"toys", "toy_id"}, {"toys", "toy_name"}, {"toys", "qty"}}));
}

TEST_F(TemplateTest, InsertionModifiesAllAttributes) {
  const UpdateTemplate* u2 = templates_.FindUpdate("U2");
  ASSERT_NE(u2, nullptr);
  EXPECT_EQ(u2->update_class(), UpdateClass::kInsertion);
  EXPECT_TRUE(u2->selection_attributes().empty());
  EXPECT_EQ(u2->modified_attributes(),
            Attrs({{"credit_card", "cid"},
                   {"credit_card", "number"},
                   {"credit_card", "zip_code"}}));
}

TEST_F(TemplateTest, JoinQueryAttributeSets) {
  const QueryTemplate* q3 = templates_.FindQuery("Q3");
  ASSERT_NE(q3, nullptr);
  EXPECT_EQ(q3->selection_attributes(),
            Attrs({{"customers", "cust_id"},
                   {"credit_card", "cid"},
                   {"credit_card", "zip_code"}}));
  EXPECT_EQ(q3->preserved_attributes(), Attrs({{"customers", "cust_name"}}));
}

TEST_F(TemplateTest, ModificationAttributeSets) {
  const UpdateTemplate u =
      Update("UPDATE toys SET qty = ? WHERE toy_id = ?");
  EXPECT_EQ(u.update_class(), UpdateClass::kModification);
  EXPECT_EQ(u.selection_attributes(), Attrs({{"toys", "toy_id"}}));
  EXPECT_EQ(u.modified_attributes(), Attrs({{"toys", "qty"}}));
}

TEST_F(TemplateTest, OrderByAttributesBelongToS) {
  const QueryTemplate q = Query(
      "SELECT toy_id FROM toys WHERE toy_name = ? ORDER BY qty DESC");
  EXPECT_EQ(q.selection_attributes(),
            Attrs({{"toys", "toy_name"}, {"toys", "qty"}}));
}

TEST_F(TemplateTest, StarPreservesEverything) {
  const QueryTemplate q = Query("SELECT * FROM toys WHERE toy_id = ?");
  EXPECT_EQ(q.preserved_attributes(),
            Attrs({{"toys", "toy_id"}, {"toys", "toy_name"}, {"toys", "qty"}}));
}

TEST_F(TemplateTest, AliasResolvesToPhysicalTable) {
  const QueryTemplate q =
      Query("SELECT t.qty FROM toys AS t WHERE t.toy_id = ?");
  EXPECT_EQ(q.preserved_attributes(), Attrs({{"toys", "qty"}}));
  EXPECT_EQ(q.selection_attributes(), Attrs({{"toys", "toy_id"}}));
}

// ----- Classes E and N (Table 6). -----

TEST_F(TemplateTest, EqualityJoinClass) {
  EXPECT_TRUE(Query("SELECT cust_name FROM customers, credit_card "
                    "WHERE cust_id = cid AND zip_code = ?")
                  .only_equality_joins());
  EXPECT_FALSE(Query("SELECT t1.toy_id FROM toys AS t1, toys AS t2 "
                     "WHERE t1.qty > t2.qty AND t1.toy_name = ? "
                     "AND t2.toy_name = ?")
                   .only_equality_joins());
}

TEST_F(TemplateTest, TopKClass) {
  EXPECT_TRUE(Query("SELECT qty FROM toys WHERE toy_id = ?").no_top_k());
  EXPECT_FALSE(
      Query("SELECT qty FROM toys WHERE toy_id >= ? LIMIT 5").no_top_k());
}

TEST_F(TemplateTest, AggregationDetection) {
  EXPECT_FALSE(Query("SELECT qty FROM toys WHERE toy_id = ?")
                   .has_aggregation());
  EXPECT_TRUE(Query("SELECT MAX(qty) FROM toys WHERE toy_id >= ?")
                  .has_aggregation());
  EXPECT_TRUE(Query("SELECT toy_name, COUNT(toy_id) FROM toys "
                    "WHERE qty >= ? GROUP BY toy_name")
                  .has_aggregation());
}

// ----- Assumption checking (Section 2.1.1). -----

TEST_F(TemplateTest, CleanTemplatePassesAssumptions) {
  EXPECT_TRUE(
      Query("SELECT qty FROM toys WHERE toy_id = ?").assumptions().ok());
  EXPECT_TRUE(
      Update("DELETE FROM toys WHERE toy_id = ?").assumptions().ok());
}

TEST_F(TemplateTest, EmbeddedConstantViolation) {
  EXPECT_TRUE(Query("SELECT qty FROM toys WHERE toy_name = 'car'")
                  .assumptions()
                  .has_embedded_constants);
  EXPECT_TRUE(Update("UPDATE toys SET qty = 0 WHERE toy_id = ?")
                  .assumptions()
                  .has_embedded_constants);
  EXPECT_TRUE(Update("INSERT INTO toys (toy_id, toy_name, qty) "
                     "VALUES (?, ?, 10)")
                  .assumptions()
                  .has_embedded_constants);
}

TEST_F(TemplateTest, WithinRelationComparisonViolation) {
  // toy_id = qty compares two attributes of one relation instance.
  EXPECT_TRUE(Query("SELECT toy_id FROM toys WHERE toy_id = qty")
                  .assumptions()
                  .compares_within_relation);
  // A self-join across two instances of the same table is fine.
  EXPECT_FALSE(Query("SELECT t1.toy_id FROM toys AS t1, toys AS t2 "
                     "WHERE t1.qty = t2.qty AND t1.toy_name = ?")
                   .assumptions()
                   .compares_within_relation);
}

TEST_F(TemplateTest, EmptyPredicateViolation) {
  EXPECT_TRUE(
      Query("SELECT toy_id FROM toys").assumptions().cartesian_product);
  EXPECT_FALSE(Query("SELECT toy_id FROM toys WHERE qty >= ?")
                   .assumptions()
                   .cartesian_product);
}

// ----- Pair properties G (ignorable) and H (result-unhelpful). -----

TEST_F(TemplateTest, IgnorablePairs) {
  const UpdateTemplate* u1 = templates_.FindUpdate("U1");
  const UpdateTemplate* u2 = templates_.FindUpdate("U2");
  const QueryTemplate* q1 = templates_.FindQuery("Q1");
  const QueryTemplate* q3 = templates_.FindQuery("Q3");
  // U1 (delete toys) is ignorable for Q3 (customers x credit_card).
  EXPECT_TRUE(IsIgnorable(*u1, *q3));
  EXPECT_FALSE(IsIgnorable(*u1, *q1));
  // U2 (insert credit_card) is ignorable for Q1 (toys) but not Q3.
  EXPECT_TRUE(IsIgnorable(*u2, *q1));
  EXPECT_FALSE(IsIgnorable(*u2, *q3));
}

TEST_F(TemplateTest, ResultUnhelpfulPairs) {
  const UpdateTemplate* u1 = templates_.FindUpdate("U1");
  const UpdateTemplate* u2 = templates_.FindUpdate("U2");
  const QueryTemplate* q1 = templates_.FindQuery("Q1");
  const QueryTemplate* q2 = templates_.FindQuery("Q2");
  const QueryTemplate* q3 = templates_.FindQuery("Q3");
  // S(U1) = {toy_id} is preserved by Q1 -> result helpful.
  EXPECT_FALSE(IsResultUnhelpful(*u1, *q1));
  // Q2 preserves only qty -> result unhelpful for U1.
  EXPECT_TRUE(IsResultUnhelpful(*u1, *q2));
  // Q3 is result-unhelpful for U2 (paper Section 4.1).
  EXPECT_TRUE(IsResultUnhelpful(*u2, *q3));
}

// ----- Output column provenance. -----

TEST_F(TemplateTest, OutputColumnsPlain) {
  const QueryTemplate q =
      Query("SELECT toy_id, qty FROM toys WHERE toy_name = ?");
  ASSERT_EQ(q.output_columns().size(), 2u);
  EXPECT_EQ(q.output_columns()[0].slot, 0u);
  EXPECT_EQ(q.output_columns()[0].attribute->column, "toy_id");
  EXPECT_EQ(q.output_columns()[1].attribute->column, "qty");
}

TEST_F(TemplateTest, OutputColumnsStarMatchesEngineExpansion) {
  const QueryTemplate q = Query(
      "SELECT * FROM customers, credit_card WHERE cust_id = cid");
  // customers has 2 columns, credit_card 3.
  ASSERT_EQ(q.output_columns().size(), 5u);
  EXPECT_EQ(q.output_columns()[0].attribute->table, "customers");
  EXPECT_EQ(q.output_columns()[2].attribute->table, "credit_card");
  EXPECT_EQ(q.output_columns()[2].slot, 1u);
}

TEST_F(TemplateTest, OutputColumnsAggregatesAreDerived) {
  const QueryTemplate q = Query(
      "SELECT toy_name, COUNT(toy_id) FROM toys WHERE qty >= ? "
      "GROUP BY toy_name");
  ASSERT_EQ(q.output_columns().size(), 2u);
  EXPECT_TRUE(q.output_columns()[0].attribute.has_value());
  EXPECT_FALSE(q.output_columns()[1].attribute.has_value());
}

// ----- Creation errors. -----

TEST_F(TemplateTest, CreationErrors) {
  EXPECT_FALSE(QueryTemplate::Create("Q", "DELETE FROM toys", catalog()).ok());
  EXPECT_FALSE(
      UpdateTemplate::Create("U", "SELECT qty FROM toys WHERE toy_id = ?",
                             catalog())
          .ok());
  EXPECT_FALSE(
      QueryTemplate::Create("Q", "SELECT x FROM ghost WHERE y = ?", catalog())
          .ok());
  EXPECT_FALSE(
      QueryTemplate::Create("Q", "SELECT nope FROM toys WHERE toy_id = ?",
                            catalog())
          .ok());
  EXPECT_FALSE(UpdateTemplate::Create(
                   "U", "UPDATE toys SET nope = ? WHERE toy_id = ?", catalog())
                   .ok());
}

// ----- TemplateSet. -----

TEST_F(TemplateTest, TemplateSetLookup) {
  EXPECT_EQ(templates_.num_queries(), 3u);
  EXPECT_EQ(templates_.num_updates(), 2u);
  EXPECT_NE(templates_.FindQuery("Q2"), nullptr);
  EXPECT_EQ(templates_.FindQuery("Q9"), nullptr);
  EXPECT_EQ(templates_.QueryIndex("Q3"), 2u);
  EXPECT_EQ(templates_.UpdateIndex("U2"), 1u);
  EXPECT_EQ(templates_.QueryIndex("nope"), TemplateSet::kNpos);
}

TEST_F(TemplateTest, TemplateSetRejectsDuplicateIds) {
  TemplateSet set;
  auto q = QueryTemplate::Create("Q1", "SELECT qty FROM toys WHERE toy_id = ?",
                                 catalog());
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(set.AddQuery(*q).ok());
  EXPECT_EQ(set.AddQuery(*q).code(), StatusCode::kAlreadyExists);
}

TEST_F(TemplateTest, BindProducesExecutableInstance) {
  const QueryTemplate* q2 = templates_.FindQuery("Q2");
  const sql::Statement bound = q2->Bind({sql::Value(5)});
  EXPECT_EQ(bound.num_params, 0);
  EXPECT_EQ(sql::ToSql(bound), "SELECT qty FROM toys WHERE toy_id = 5");
}

}  // namespace
}  // namespace dssp::templates
