// Predicate-indexed view registry tests:
//
//  1. Unit tests for ViewIndexPlan compilation (discriminator selection,
//     pair-probe kinds, index-key derivation) and probe range semantics.
//  2. Differential: a node with the predicate index enabled must produce
//     bit-identical invalidation behavior (counts, surviving entries, stale
//     side store) to a node running the plain group scan, on all four paper
//     workloads and on randomized templates, at mixed exposure levels.
//  3. The eviction / stale-retention interaction under capacity pressure.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/plan.h"
#include "catalog/schema.h"
#include "common/random.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/node.h"
#include "dssp/view_index.h"
#include "engine/database.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "templates/template.h"
#include "workloads/application.h"

namespace dssp::service {
namespace {

using analysis::ExposureLevel;
using analysis::InvalidationPlan;
using sql::Value;
using templates::QueryTemplate;
using templates::UpdateTemplate;

// ----- Compilation unit tests over a two-table PK/FK schema. -----

catalog::Catalog TestCatalog() {
  catalog::Catalog catalog;
  DSSP_CHECK(catalog
                 .AddTable(catalog::TableSchema(
                     "t1",
                     {{"a", catalog::ColumnType::kInt64},
                      {"b", catalog::ColumnType::kInt64},
                      {"c", catalog::ColumnType::kString}},
                     {"a"}))
                 .ok());
  DSSP_CHECK(catalog
                 .AddTable(catalog::TableSchema(
                     "t2",
                     {{"x", catalog::ColumnType::kInt64},
                      {"r", catalog::ColumnType::kInt64},
                      {"y", catalog::ColumnType::kInt64}},
                     {"x"}, {{"r", "t1", "a"}}))
                 .ok());
  return catalog;
}

// A small template universe exercising every probe kind.
struct Compiled {
  catalog::Catalog catalog = TestCatalog();
  templates::TemplateSet templates;
  std::unique_ptr<InvalidationPlan> plan;
  std::unique_ptr<ViewIndexPlan> index;

  explicit Compiled(const std::vector<std::pair<std::string, std::string>>&
                        queries,
                    const std::vector<std::pair<std::string, std::string>>&
                        updates) {
    for (const auto& [id, sql] : queries) {
      auto q = QueryTemplate::Create(id, sql, catalog);
      DSSP_CHECK(q.ok());
      templates.AddQuery(std::move(*q));
    }
    for (const auto& [id, sql] : updates) {
      auto u = UpdateTemplate::Create(id, sql, catalog);
      DSSP_CHECK(u.ok());
      templates.AddUpdate(std::move(*u));
    }
    plan = std::make_unique<InvalidationPlan>(
        InvalidationPlan::Compile(templates, catalog));
    index = std::make_unique<ViewIndexPlan>(
        ViewIndexPlan::Compile(templates, catalog, *plan));
  }
};

TEST(ViewIndexPlanTest, PicksEqualityDiscriminatorOverRange) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE b < ? AND a = ?"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"}});
  const TemplateIndexSpec* spec = c.index->query_spec(0);
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->indexable);
  EXPECT_EQ(spec->op, sql::CompareOp::kEq);
  EXPECT_EQ(spec->column, "a");
  EXPECT_EQ(spec->where_index, 1u);
}

TEST(ViewIndexPlanTest, RangeDiscriminatorWhenNoEquality) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE a >= ?"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"}});
  const TemplateIndexSpec* spec = c.index->query_spec(0);
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->indexable);
  EXPECT_EQ(spec->op, sql::CompareOp::kGe);
  EXPECT_EQ(spec->column, "a");
}

TEST(ViewIndexPlanTest, TemplateWithoutParamConjunctIsNotIndexable) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE b < 5"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"}});
  const TemplateIndexSpec* spec = c.index->query_spec(0);
  ASSERT_NE(spec, nullptr);
  EXPECT_FALSE(spec->indexable);
  EXPECT_EQ(c.index->query_spec(CacheEntry::kNoTemplate), nullptr);
}

TEST(ViewIndexPlanTest, PairKindsFollowThePlan) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE a = ?"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"},    // Probeable program.
              {"U2", "DELETE FROM t2 WHERE x = ?"},    // Other table: never.
              {"U3", "DELETE FROM t1"}});              // No WHERE: always.
  EXPECT_EQ(c.index->pair_probe(0, 0).kind, PairProbe::Kind::kProbe);
  EXPECT_EQ(c.plan->pair(1, 0).kind, analysis::PlanKind::kNeverInvalidate);
  EXPECT_EQ(c.index->pair_probe(1, 0).kind, PairProbe::Kind::kSkipIndexed);
  EXPECT_EQ(c.index->pair_probe(2, 0).kind, PairProbe::Kind::kScan);

  const ViewIndexPlan::Summary summary = c.index->Summarize();
  EXPECT_EQ(summary.indexable_queries, 1u);
  EXPECT_EQ(summary.probe_pairs, 1u);
  EXPECT_EQ(summary.skip_pairs, 1u);
  EXPECT_EQ(summary.scan_pairs, 1u);
}

TEST(ViewIndexPlanTest, NonIndexableTemplateForcesScanOnProgramPairs) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE b < 5"}},
             {{"U1", "DELETE FROM t1 WHERE b = ?"}});
  if (c.plan->pair(0, 0).kind == analysis::PlanKind::kParamProgram) {
    EXPECT_EQ(c.index->pair_probe(0, 0).kind, PairProbe::Kind::kScan);
  }
}

TEST(ViewIndexPlanTest, IndexKeyRequiresLiteralNonNullBound) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE a = ?"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"}});
  const QueryTemplate& q = c.templates.queries()[0];

  const auto bound = c.index->IndexKeyFor(0, q.Bind({Value(7)}));
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->Compare(Value(7)), 0);

  // NULL bound: probes can never select it, so it must stay unindexed.
  EXPECT_FALSE(c.index->IndexKeyFor(0, q.Bind({Value()})).has_value());

  // Unbound template (the parameter still a `?`): no literal to index.
  EXPECT_FALSE(c.index->IndexKeyFor(0, q.statement()).has_value());

  // Unknown group.
  EXPECT_FALSE(
      c.index->IndexKeyFor(17, q.Bind({Value(7)})).has_value());
}

TEST(ViewIndexPlanTest, EqualityProbeSelectsOnlyMatchingBucket) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE a = ?"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"}});
  const UpdateTemplate& u = c.templates.updates()[0];

  ValueKeyMap by_value;
  by_value[Value(1)].insert("k1");
  by_value[Value(5)].insert("k5a");
  by_value[Value(5)].insert("k5b");
  by_value[Value(9)].insert("k9");

  const GroupProbe probe = c.index->BuildGroupProbe(0, 0, u.Bind({Value(5)}));
  ASSERT_EQ(probe.mode, GroupProbe::Mode::kProbe);
  std::set<std::string> out;
  probe.CollectCandidates(by_value, &out);
  EXPECT_EQ(out, (std::set<std::string>{"k5a", "k5b"}));
}

TEST(ViewIndexPlanTest, RangeDiscriminatorProbeIsConservative) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE a >= ?"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"}});
  const UpdateTemplate& u = c.templates.updates()[0];

  // Entry intervals are [bound, +inf); a point update at 5 can only touch
  // entries whose bound <= 5.
  ValueKeyMap by_value;
  by_value[Value(1)].insert("k1");
  by_value[Value(5)].insert("k5");
  by_value[Value(9)].insert("k9");
  by_value[Value(std::string("m"))].insert("kstr");

  const GroupProbe probe = c.index->BuildGroupProbe(0, 0, u.Bind({Value(5)}));
  ASSERT_EQ(probe.mode, GroupProbe::Mode::kProbe);
  std::set<std::string> out;
  probe.CollectCandidates(by_value, &out);
  // The string-keyed entry is outside the numeric type class: a numeric
  // point never satisfies a string constraint conjunction.
  EXPECT_EQ(out, (std::set<std::string>{"k1", "k5"}));
}

TEST(ViewIndexPlanTest, NullProbeOperandSelectsNothing) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE a = ?"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"}});
  const UpdateTemplate& u = c.templates.updates()[0];
  ValueKeyMap by_value;
  by_value[Value(1)].insert("k1");

  // A NULL update operand satisfies no comparison: the check can never
  // fire, so no indexed entry needs visiting.
  const GroupProbe probe = c.index->BuildGroupProbe(0, 0, u.Bind({Value()}));
  ASSERT_EQ(probe.mode, GroupProbe::Mode::kProbe);
  std::set<std::string> out;
  probe.CollectCandidates(by_value, &out);
  EXPECT_TRUE(out.empty());
}

TEST(ViewIndexPlanTest, MalformedBoundUpdateDegradesToScan) {
  Compiled c({{"Q1", "SELECT a, b, c FROM t1 WHERE a = ?"}},
             {{"U1", "DELETE FROM t1 WHERE a = ?"}});
  // A statement that is not a binding of the compiled template (still a
  // parameter where a literal is expected) must scan, mirroring
  // EvaluatePairPlan's invalidate-on-fetch-failure.
  const GroupProbe probe =
      c.index->BuildGroupProbe(0, 0, c.templates.updates()[0].statement());
  EXPECT_EQ(probe.mode, GroupProbe::Mode::kScanAll);
}

// ----- Node-level differential: probed vs plain scan. -----

// Drives two DsspNodes through an identical store/update history — one with
// the predicate index enabled, one with it disabled (the legacy scan) — and
// asserts identical observable state after every update.
class NodePairHarness {
 public:
  NodePairHarness(const catalog::Catalog* catalog,
                  const templates::TemplateSet* templates)
      : catalog_(catalog), templates_(templates) {
    scan_node_.SetPredicateIndexEnabled(false);
    DSSP_CHECK(probe_node_.RegisterApp(kApp, catalog, templates).ok());
    DSSP_CHECK(scan_node_.RegisterApp(kApp, catalog, templates).ok());
    probe_node_.SetStaleRetention(kApp, 64);
    scan_node_.SetStaleRetention(kApp, 64);
  }

  void SetCapacity(size_t cap) {
    probe_node_.SetCacheCapacity(kApp, cap);
    scan_node_.SetCacheCapacity(kApp, cap);
  }

  // Stores one query-template binding at `level` on both nodes.
  void StoreBound(size_t qi, const std::vector<Value>& params,
                  ExposureLevel level) {
    CacheEntry entry;
    entry.key = "q" + std::to_string(qi) + ":" +
                std::to_string(keys_.size());
    entry.level = level;
    entry.blob = "blob:" + entry.key;
    if (level >= ExposureLevel::kTemplate) entry.template_index = qi;
    if (level >= ExposureLevel::kStmt) {
      entry.statement = templates_->queries()[qi].Bind(params);
    }
    if (level == ExposureLevel::kView) entry.result.emplace();
    keys_.push_back(entry.key);
    probe_node_.Store(kApp, entry);
    scan_node_.Store(kApp, std::move(entry));
  }

  // Applies one notice to both nodes and checks every observable matches.
  void Update(const UpdateNotice& notice) {
    const size_t probed = probe_node_.OnUpdate(kApp, notice);
    const size_t scanned = scan_node_.OnUpdate(kApp, notice);
    ASSERT_EQ(probed, scanned) << "invalidation count diverged";
    ASSERT_EQ(probe_node_.CacheSize(kApp), scan_node_.CacheSize(kApp));
    for (const std::string& key : keys_) {
      SCOPED_TRACE("key " + key);
      // Peek-free membership check via the stale store bound trick is not
      // possible here, so use Lookup on both (symmetric side effects).
      const bool in_probe = probe_node_.Lookup(kApp, key).has_value();
      const bool in_scan = scan_node_.Lookup(kApp, key).has_value();
      ASSERT_EQ(in_probe, in_scan) << "survivor set diverged";
      // Stale store: identical membership at several bounds.
      for (uint64_t bound : {uint64_t{0}, uint64_t{1}, uint64_t{3},
                             uint64_t{100}}) {
        ASSERT_EQ(
            probe_node_.LookupStale(kApp, key, bound).has_value(),
            scan_node_.LookupStale(kApp, key, bound).has_value())
            << "stale store diverged at bound " << bound;
      }
    }
    ASSERT_EQ(probe_node_.stats(kApp).entries_invalidated,
              scan_node_.stats(kApp).entries_invalidated);
  }

  DsspNode& probe_node() { return probe_node_; }

  static constexpr const char* kApp = "diff";

 private:
  const catalog::Catalog* catalog_;
  const templates::TemplateSet* templates_;
  DsspNode probe_node_;
  DsspNode scan_node_;
  std::vector<std::string> keys_;
};

std::vector<Value> RandomParamsFor(Rng& rng, const sql::Statement& stmt) {
  std::vector<Value> params;
  for (int i = 0; i < stmt.num_params; ++i) {
    switch (rng.NextBelow(4)) {
      case 0:
        params.push_back(Value());  // NULL.
        break;
      case 1: {
        static constexpr const char* kPool[] = {"a", "b", "m"};
        params.push_back(Value(kPool[rng.NextBelow(3)]));
        break;
      }
      default:
        params.push_back(Value(rng.NextInt(-3, 12)));
        break;
    }
  }
  return params;
}

constexpr ExposureLevel kEntryLevels[] = {
    ExposureLevel::kBlind, ExposureLevel::kTemplate, ExposureLevel::kStmt,
    ExposureLevel::kStmt, ExposureLevel::kStmt, ExposureLevel::kView};

void RunDifferential(const catalog::Catalog& catalog,
                     const templates::TemplateSet& templates, uint64_t seed,
                     int entries, int updates,
                     std::optional<size_t> capacity = std::nullopt) {
  NodePairHarness pair(&catalog, &templates);
  if (capacity.has_value()) pair.SetCapacity(*capacity);
  Rng rng(seed);
  for (int i = 0; i < entries; ++i) {
    const size_t qi = rng.NextBelow(templates.num_queries());
    const sql::Statement& stmt = templates.queries()[qi].statement();
    pair.StoreBound(qi, RandomParamsFor(rng, stmt),
                    kEntryLevels[i % 6]);
  }
  for (int i = 0; i < updates; ++i) {
    UpdateNotice notice;
    const size_t ui = rng.NextBelow(templates.num_updates());
    switch (rng.NextBelow(8)) {
      case 0:
        notice.level = ExposureLevel::kBlind;
        break;
      case 1:
        notice.level = ExposureLevel::kTemplate;
        notice.template_index = ui;
        break;
      default:
        notice.level = ExposureLevel::kStmt;
        notice.template_index = ui;
        notice.statement = templates.updates()[ui].Bind(
            RandomParamsFor(rng, templates.updates()[ui].statement()));
        break;
    }
    pair.Update(notice);
    if (::testing::Test::HasFailure()) return;
    // Keep the caches populated so later updates still have work to do.
    if (i % 3 == 0) {
      const size_t qi = rng.NextBelow(templates.num_queries());
      pair.StoreBound(qi,
                      RandomParamsFor(rng, templates.queries()[qi].statement()),
                      kEntryLevels[i % 6]);
    }
  }
}

TEST(ViewIndexDifferentialTest, PaperWorkloadsBitIdentical) {
  for (const std::string app_name :
       {"toystore", "auction", "bboard", "bookstore"}) {
    SCOPED_TRACE(app_name);
    // Build the workload's catalog + templates once (the app itself only
    // serves as the factory here).
    DsspNode scratch;
    ScalableApp app(app_name, &scratch,
                    crypto::KeyRing::FromPassphrase("view-index"));
    auto workload = workloads::MakeApplication(app_name);
    ASSERT_TRUE(workload->Setup(app, 0.25, 41).ok());
    ASSERT_TRUE(app.Finalize().ok());

    RunDifferential(app.home().database().catalog(), app.templates(),
                    /*seed=*/1234, /*entries=*/120, /*updates=*/60);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(ViewIndexDifferentialTest, RandomizedTemplatesBitIdentical) {
  const catalog::Catalog catalog = TestCatalog();
  Rng rng(20260809);
  constexpr const char* kQueries[] = {
      "SELECT a, b, c FROM t1 WHERE a = ?",
      "SELECT a, b, c FROM t1 WHERE a = ? AND b < ?",
      "SELECT a, b, c FROM t1 WHERE b >= ?",
      "SELECT a, b, c FROM t1 WHERE c = ?",
      "SELECT x, r, y FROM t2 WHERE r = ?",
      "SELECT b, y FROM t1, t2 WHERE r = a AND a = ?",
      "SELECT a, b, c FROM t1 WHERE b < 5",
      "SELECT a, b, c FROM t1 WHERE a <= ?",
  };
  constexpr const char* kUpdates[] = {
      "DELETE FROM t1 WHERE a = ?",
      "DELETE FROM t1 WHERE a < ?",
      "DELETE FROM t1",
      "DELETE FROM t2 WHERE x = ?",
      "INSERT INTO t1 (a, b, c) VALUES (?, ?, ?)",
      "INSERT INTO t2 (x, r, y) VALUES (?, ?, ?)",
      "UPDATE t1 SET b = ? WHERE a = ?",
      "UPDATE t1 SET c = ? WHERE b >= ?",
      "UPDATE t2 SET r = ? WHERE x = ?",
  };
  templates::TemplateSet templates;
  int id = 0;
  for (const char* sql : kQueries) {
    auto q = QueryTemplate::Create("Q" + std::to_string(id++), sql, catalog);
    ASSERT_TRUE(q.ok()) << sql;
    templates.AddQuery(std::move(*q));
  }
  id = 0;
  for (const char* sql : kUpdates) {
    auto u = UpdateTemplate::Create("U" + std::to_string(id++), sql, catalog);
    ASSERT_TRUE(u.ok()) << sql;
    templates.AddUpdate(std::move(*u));
  }

  RunDifferential(catalog, templates, /*seed=*/rng.NextBelow(1u << 30),
                  /*entries=*/200, /*updates=*/120);
}

TEST(ViewIndexDifferentialTest, EvictionAndStaleRetentionStayIdentical) {
  const catalog::Catalog catalog = TestCatalog();
  templates::TemplateSet templates;
  auto q = QueryTemplate::Create("Q0", "SELECT a, b, c FROM t1 WHERE a = ?",
                                 catalog);
  ASSERT_TRUE(q.ok());
  templates.AddQuery(std::move(*q));
  auto u =
      UpdateTemplate::Create("U0", "DELETE FROM t1 WHERE a = ?", catalog);
  ASSERT_TRUE(u.ok());
  templates.AddUpdate(std::move(*u));

  // Capacity pressure makes inserts evict (bypassing the stale store) while
  // updates invalidate (feeding it); both nodes must stay in lockstep —
  // including the index's bucket bookkeeping across evict/reinsert cycles.
  RunDifferential(catalog, templates, /*seed=*/99, /*entries=*/80,
                  /*updates=*/80, /*capacity=*/24);
}

// Re-inserting a key under a different binding must re-bucket it: the old
// bucket may not shadow the new bound.
TEST(ViewIndexDifferentialTest, ReinsertedEntryIsReindexed) {
  const catalog::Catalog catalog = TestCatalog();
  templates::TemplateSet templates;
  auto q = QueryTemplate::Create("Q0", "SELECT a, b, c FROM t1 WHERE a = ?",
                                 catalog);
  ASSERT_TRUE(q.ok());
  templates.AddQuery(std::move(*q));
  auto u =
      UpdateTemplate::Create("U0", "DELETE FROM t1 WHERE a = ?", catalog);
  ASSERT_TRUE(u.ok());
  templates.AddUpdate(std::move(*u));

  DsspNode node;
  ASSERT_TRUE(node.RegisterApp("app", &catalog, &templates).ok());
  const auto store = [&](int64_t bound) {
    CacheEntry entry;
    entry.key = "k";  // Same key both times.
    entry.level = ExposureLevel::kStmt;
    entry.template_index = 0;
    entry.statement = templates.queries()[0].Bind({Value(bound)});
    entry.blob = "b";
    node.Store("app", std::move(entry));
  };
  const auto kill = [&](int64_t operand) {
    UpdateNotice notice;
    notice.level = ExposureLevel::kStmt;
    notice.template_index = 0;
    notice.statement = templates.updates()[0].Bind({Value(operand)});
    return node.OnUpdate("app", notice);
  };

  store(3);
  store(8);  // Re-bucketed from 3 to 8.
  EXPECT_EQ(kill(3), 0u);  // The old bucket must not match anymore.
  EXPECT_EQ(node.CacheSize("app"), 1u);
  EXPECT_EQ(kill(8), 1u);
  EXPECT_EQ(node.CacheSize("app"), 0u);
}

}  // namespace
}  // namespace dssp::service
