// The paper's correctness property (Section 2.2) as an executable oracle:
//
//   For any query Q, database D, and update U:
//     Q[D] != Q[D + U]  =>  S(U, Q, ...) = I.
//
// For every benchmark application we run a realistic trace, maintain a pool
// of cached query instances with their materialized results, and on every
// update (a) record each strategy's decision for each cached instance, then
// (b) apply the update and re-execute the instances. Any instance whose
// result changed MUST have been invalidated by every strategy class. We also
// check the Figure 4 hierarchy: invalidation counts are monotone
// MBS >= MTIS >= MSIS >= MVIS.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "crypto/keyring.h"
#include "dssp/app.h"
#include "invalidation/strategies.h"
#include "workloads/application.h"

namespace dssp::invalidation {
namespace {

using analysis::ExposureLevel;
using sql::Value;

struct CachedInstance {
  size_t query_index;
  sql::Statement statement;
  engine::QueryResult result;
};

class OracleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OracleTest, StrategiesAreCorrectAndMonotoneOnRealTraces) {
  service::DsspNode node;
  service::ScalableApp app(GetParam(), &node,
                           crypto::KeyRing::FromPassphrase("oracle"));
  auto workload = workloads::MakeApplication(GetParam());
  ASSERT_TRUE(workload->Setup(app, /*scale=*/0.3, /*seed=*/21).ok());
  ASSERT_TRUE(app.Finalize().ok());
  engine::Database& db = app.home().database();
  const templates::TemplateSet& templates = app.templates();
  const catalog::Catalog& catalog = db.catalog();

  BlindStrategy blind;
  TemplateInspectionStrategy tis(catalog);
  StatementInspectionStrategy sis(catalog);
  ViewInspectionStrategy vis(catalog);

  auto session = workload->NewSession(4);
  Rng rng(99);

  std::map<std::string, CachedInstance> cached;  // Keyed by statement text.
  uint64_t inv_blind = 0;
  uint64_t inv_tis = 0;
  uint64_t inv_sis = 0;
  uint64_t inv_vis = 0;
  uint64_t updates_seen = 0;
  uint64_t changes_seen = 0;

  constexpr size_t kMaxCached = 150;
  constexpr int kPages = 250;

  for (int page = 0; page < kPages; ++page) {
    for (const sim::DbOp& op : session->NextPage(rng)) {
      if (!op.is_update) {
        const size_t index = templates.QueryIndex(op.template_id);
        ASSERT_NE(index, templates::TemplateSet::kNpos);
        const templates::QueryTemplate& tmpl = templates.queries()[index];
        sql::Statement bound = tmpl.Bind(op.params);
        const std::string key = sql::ToSql(bound);
        auto result = db.ExecuteQuery(bound);
        ASSERT_TRUE(result.ok()) << key << ": " << result.status().ToString();
        if (cached.size() < kMaxCached || cached.count(key) != 0) {
          cached[key] =
              CachedInstance{index, std::move(bound), std::move(*result)};
        }
        continue;
      }

      // An update: collect decisions, apply, verify.
      const size_t u_index = templates.UpdateIndex(op.template_id);
      ASSERT_NE(u_index, templates::TemplateSet::kNpos);
      const templates::UpdateTemplate& u_tmpl = templates.updates()[u_index];
      const sql::Statement u_stmt = u_tmpl.Bind(op.params);
      ++updates_seen;

      UpdateView uv;
      uv.level = ExposureLevel::kStmt;
      uv.tmpl = &u_tmpl;
      uv.statement = &u_stmt;

      struct Decisions {
        Decision blind, tis, sis, vis;
      };
      std::map<std::string, Decisions> decisions;
      for (const auto& [key, instance] : cached) {
        const templates::QueryTemplate& q_tmpl =
            templates.queries()[instance.query_index];
        CachedQueryView blind_view;
        blind_view.level = ExposureLevel::kBlind;
        CachedQueryView tis_view;
        tis_view.level = ExposureLevel::kTemplate;
        tis_view.tmpl = &q_tmpl;
        CachedQueryView sis_view = tis_view;
        sis_view.level = ExposureLevel::kStmt;
        sis_view.statement = &instance.statement;
        CachedQueryView vis_view = sis_view;
        vis_view.level = ExposureLevel::kView;
        vis_view.result = &instance.result;
        decisions[key] = Decisions{
            blind.Decide(uv, blind_view), tis.Decide(uv, tis_view),
            sis.Decide(uv, sis_view), vis.Decide(uv, vis_view)};
        if (decisions[key].blind == Decision::kInvalidate) ++inv_blind;
        if (decisions[key].tis == Decision::kInvalidate) ++inv_tis;
        if (decisions[key].sis == Decision::kInvalidate) ++inv_sis;
        if (decisions[key].vis == Decision::kInvalidate) ++inv_vis;

        // Per-pair monotonicity (Figure 4 containment).
        EXPECT_TRUE(decisions[key].blind == Decision::kInvalidate ||
                    decisions[key].tis == Decision::kDoNotInvalidate);
        EXPECT_TRUE(decisions[key].tis == Decision::kInvalidate ||
                    decisions[key].sis == Decision::kDoNotInvalidate);
        EXPECT_TRUE(decisions[key].sis == Decision::kInvalidate ||
                    decisions[key].vis == Decision::kDoNotInvalidate);
      }

      auto effect = db.ExecuteUpdate(u_stmt);
      ASSERT_TRUE(effect.ok())
          << sql::ToSql(u_stmt) << ": " << effect.status().ToString();

      for (auto& [key, instance] : cached) {
        auto fresh = db.ExecuteQuery(instance.statement);
        ASSERT_TRUE(fresh.ok());
        if (!fresh->SameResult(instance.result)) {
          ++changes_seen;
          const Decisions& d = decisions[key];
          // THE correctness property: a changed result must have been
          // invalidated by every strategy class.
          EXPECT_EQ(d.blind, Decision::kInvalidate)
              << "MBS missed: " << sql::ToSql(u_stmt) << " vs " << key;
          EXPECT_EQ(d.tis, Decision::kInvalidate)
              << "MTIS missed: " << sql::ToSql(u_stmt) << " vs " << key;
          EXPECT_EQ(d.sis, Decision::kInvalidate)
              << "MSIS missed: " << sql::ToSql(u_stmt) << " vs " << key;
          EXPECT_EQ(d.vis, Decision::kInvalidate)
              << "MVIS missed: " << sql::ToSql(u_stmt) << " vs " << key;
          instance.result = std::move(*fresh);
        }
      }
    }
  }

  // The trace exercised the machinery.
  EXPECT_GT(updates_seen, 20u);
  EXPECT_GT(changes_seen, 0u);
  // Aggregate monotonicity: more information, fewer invalidations.
  EXPECT_GE(inv_blind, inv_tis);
  EXPECT_GE(inv_tis, inv_sis);
  EXPECT_GE(inv_sis, inv_vis);
  // And the refinement is not vacuous.
  EXPECT_LT(inv_tis, inv_blind);
  EXPECT_LT(inv_sis, inv_tis);
}

INSTANTIATE_TEST_SUITE_P(Apps, OracleTest,
                         ::testing::Values("toystore", "auction", "bboard",
                                           "bookstore"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dssp::invalidation
