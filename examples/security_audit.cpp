// Security audit: the administrator-facing tool the paper's methodology
// implies. For an application (auction | bboard | bookstore | toystore) it
// reports, per template: assumption compliance, the IPM characterization of
// every pair with its rationale (optionally), and the recommended exposure
// levels with what data stays confidential.
//
// Usage:  ./build/examples/security_audit [app] [--rationales]
//                                           [--markdown | --csv]
//
// --markdown / --csv print machine-shareable exports of the IPM table and
// the recommended exposure levels instead of the plain-text audit.

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/methodology.h"
#include "analysis/report_export.h"
#include "crypto/keyring.h"
#include "workloads/application.h"

int main(int argc, char** argv) {
  std::string name = "bookstore";
  bool rationales = false;
  bool markdown = false;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rationales") == 0) {
      rationales = true;
    } else if (std::strcmp(argv[i], "--markdown") == 0) {
      markdown = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      name = argv[i];
    }
  }

  dssp::service::DsspNode node;
  dssp::service::ScalableApp app(
      name, &node, dssp::crypto::KeyRing::FromPassphrase("audit"));
  auto workload = dssp::workloads::MakeApplication(name);
  DSSP_CHECK_OK(workload->Setup(app, /*scale=*/0.25, /*seed=*/1));
  DSSP_CHECK_OK(app.Finalize());
  const auto& templates = app.templates();
  const auto& catalog = app.home().database().catalog();

  if (markdown || csv) {
    const auto ipm =
        dssp::analysis::IpmCharacterization::Compute(templates, catalog);
    const auto report = dssp::analysis::RunMethodology(
        templates, catalog, workload->CompulsoryEncryption(catalog));
    if (markdown) {
      std::printf("## IPM characterization — %s\n\n%s\n"
                  "## Recommended exposure levels\n\n%s",
                  name.c_str(),
                  dssp::analysis::IpmToMarkdown(templates, ipm).c_str(),
                  dssp::analysis::SecurityReportToMarkdown(templates, report)
                      .c_str());
    } else {
      std::printf("%s\n%s",
                  dssp::analysis::IpmToCsv(templates, ipm).c_str(),
                  dssp::analysis::SecurityReportToCsv(report).c_str());
    }
    return 0;
  }

  std::printf("=== Security audit: %s ===\n\n", name.c_str());

  std::printf("-- Templates and Section 2.1.1 assumption compliance --\n");
  for (const auto& q : templates.queries()) {
    std::printf("  %-4s %-9s %s\n", q.id().c_str(),
                q.assumptions().ok() ? "ok" : "VIOLATES",
                q.ToSql().c_str());
    if (!q.assumptions().ok()) {
      std::printf("       -> %s (conservative treatment: keep exposed)\n",
                  q.assumptions().ToString().c_str());
    }
  }
  for (const auto& u : templates.updates()) {
    std::printf("  %-4s %-9s %s\n", u.id().c_str(),
                u.assumptions().ok() ? "ok" : "VIOLATES",
                u.ToSql().c_str());
  }

  const auto ipm =
      dssp::analysis::IpmCharacterization::Compute(templates, catalog);
  const auto summary = ipm.Summarize();
  std::printf(
      "\n-- IPM characterization (Step 2a) --\n"
      "  %zu template pairs: %zu never interact (A=0); of the rest,\n"
      "  %zu need no parameter exposure (B=A) and %zu need no result "
      "exposure (C=B).\n",
      summary.total(), summary.all_zero,
      summary.b_eq_a_c_lt_b + summary.b_eq_a_c_eq_b,
      summary.b_lt_a_c_eq_b + summary.b_eq_a_c_eq_b);

  if (rationales) {
    std::printf("\n  Per-pair rationales:\n");
    for (size_t i = 0; i < templates.num_updates(); ++i) {
      for (size_t j = 0; j < templates.num_queries(); ++j) {
        std::printf("    %s/%s: %s\n", templates.updates()[i].id().c_str(),
                    templates.queries()[j].id().c_str(),
                    ipm.pair(i, j).rationale.c_str());
      }
    }
  }

  const dssp::analysis::CompulsoryPolicy policy =
      workload->CompulsoryEncryption(catalog);
  std::printf("\n-- Step 1: compulsory encryption (data-privacy law) --\n");
  for (const auto& attr : policy.sensitive_attributes) {
    std::printf("  sensitive: %s\n", attr.ToString().c_str());
  }

  const dssp::analysis::SecurityReport report =
      dssp::analysis::RunMethodology(templates, catalog, policy);
  std::printf("\n-- Recommended exposure levels (Step 1 + Step 2b) --\n%s",
              report.ToString().c_str());

  std::printf(
      "\nSummary: %zu of %zu query templates serve encrypted results; only "
      "the\ntemplates still at 'view'/'stmt' need the administrator's "
      "security-versus-\nscalability judgement (Step 3).\n",
      report.QueriesWithEncryptedResults(), templates.num_queries());
  return 0;
}
