// Large-population failover demo: tens of thousands of closed-loop clients
// multiplexed over the epoch-based event executor, with one cluster member
// killed mid-run and rejoined later — under a *batched* invalidation bus.
// While the member is down, the bus queues every notice it misses; the
// rejoin drains that backlog in coalesced multi-notice frames, so the
// catch-up costs a handful of wire round trips instead of one per missed
// update. Watch `batches sent` and `notices replayed` in the output.
//
//   ./million_clients_demo [clients]   (default 50000)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cluster/router.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "sim/cluster_sim.h"
#include "workloads/application.h"

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 50000;
  DSSP_CHECK(clients > 0);

  dssp::cluster::ClusterOptions options;
  options.num_nodes = 4;
  options.replication = 2;
  options.bus.max_batch = 64;  // Coalesce fan-out and rejoin replay.

  std::printf(
      "Building a %d-node cluster (replication %zu, batch %zu) for %d "
      "clients...\n",
      options.num_nodes, options.replication, options.bus.max_batch,
      clients);
  dssp::cluster::ClusterRouter router(options);
  dssp::service::ScalableApp app(
      "bookstore", &router,
      dssp::crypto::KeyRing::FromPassphrase("million-demo"));
  auto workload = dssp::workloads::MakeApplication("bookstore");
  DSSP_CHECK_OK(workload->Setup(app, /*scale=*/0.25, /*seed=*/7));
  DSSP_CHECK_OK(app.Finalize());
  auto generator = workload->NewSession(11);

  dssp::sim::SimConfig config;
  config.duration_s = 12.0;
  config.warmup_s = 3.0;
  config.think_time_mean_s = 7.0;
  config.exponential_arrivals = true;
  config.dssp_workers = std::max(8, clients / 2000);
  config.dssp_lookup_s = 0.0002;
  config.home_workers = std::max(16, clients / 500);
  config.home_query_base_s = 0.0005;
  config.home_query_per_row_s = 0.0;
  config.home_update_base_s = 0.0005;
  config.seed = 3;

  // Kill one member a third of the way in; rejoin at two thirds. Both are
  // first-class events: they fire at exactly these virtual instants.
  dssp::sim::ClusterScenario scenario;
  scenario.kill_node = 1;
  scenario.kill_at_s = config.duration_s / 3.0;
  scenario.rejoin_at_s = 2.0 * config.duration_s / 3.0;

  std::printf(
      "Running %.0fs of traffic; killing node %d at t=%.1fs, rejoining at "
      "t=%.1fs...\n\n",
      config.duration_s, scenario.kill_node, scenario.kill_at_s,
      scenario.rejoin_at_s);

  auto result = dssp::sim::RunClusterSimulation(
      router, {dssp::sim::Tenant{&app, generator.get(), clients}}, config,
      scenario);
  DSSP_CHECK_OK(result.status());
  const dssp::sim::SimResult& tenant = result->tenants[0];

  std::printf("Run summary:\n  %s\n\n", tenant.ToString().c_str());
  std::printf("Executor: %llu events over %llu epochs\n",
              static_cast<unsigned long long>(result->events_executed),
              static_cast<unsigned long long>(result->executor_epochs));
  std::printf("Failover:\n");
  std::printf("  kill fired at:     t=%.3fs\n", result->kill_fired_at_s);
  std::printf("  rejoin fired at:   t=%.3fs\n", result->rejoin_fired_at_s);
  std::printf("  notices replayed:  %llu\n",
              static_cast<unsigned long long>(result->rejoin_replayed));
  std::printf("  failed client ops: %llu\n\n",
              static_cast<unsigned long long>(tenant.failed_ops));

  const dssp::cluster::BusStats bus = router.bus().stats();
  std::printf(
      "Invalidation bus: %llu published, %llu delivered, %llu batches sent "
      "(%llu notices coalesced), %llu dropped, %llu unreachable\n",
      static_cast<unsigned long long>(bus.published),
      static_cast<unsigned long long>(bus.delivered_notices),
      static_cast<unsigned long long>(bus.batches_sent),
      static_cast<unsigned long long>(bus.batched_notices),
      static_cast<unsigned long long>(bus.dropped_frames),
      static_cast<unsigned long long>(bus.unreachable_failures));
  return 0;
}
