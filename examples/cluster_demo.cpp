// Scale-out failover demo: a 4-node DSSP cluster serving the bookstore
// workload while one member is killed mid-run and rejoined later. The point
// to watch: clients never see a failed operation — lookups that would have
// hit the dead member fall back to its replica (or go home), the bus queues
// the invalidations it missed, and the rejoin replays them before the
// member serves again.
//
//   ./cluster_demo [nodes] [replication]   (defaults: 4 2)

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cluster/router.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "sim/cluster_sim.h"
#include "workloads/application.h"

int main(int argc, char** argv) {
  using dssp::cluster::ClusterOptions;
  using dssp::cluster::ClusterRouter;

  ClusterOptions options;
  options.num_nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  options.replication = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 2;
  DSSP_CHECK(options.num_nodes >= 1 && options.replication >= 1);

  std::printf("Building a %d-node DSSP cluster (replication %zu)...\n",
              options.num_nodes, options.replication);
  ClusterRouter router(options);
  dssp::service::ScalableApp app(
      "bookstore", &router,
      dssp::crypto::KeyRing::FromPassphrase("cluster-demo"));
  auto workload = dssp::workloads::MakeApplication("bookstore");
  DSSP_CHECK_OK(workload->Setup(app, /*scale=*/0.5, /*seed=*/7));
  DSSP_CHECK_OK(app.Finalize());
  auto generator = workload->NewSession(11);

  dssp::sim::SimConfig config;
  config.duration_s = 120.0;
  config.think_time_mean_s = 2.0;
  config.dssp_workers = 2;
  config.seed = 3;

  // Kill one member a third of the way in; rejoin it at two thirds.
  dssp::sim::ClusterScenario scenario;
  scenario.kill_node = options.num_nodes > 1 ? 1 : 0;
  scenario.kill_at_s = config.duration_s / 3.0;
  scenario.rejoin_at_s = 2.0 * config.duration_s / 3.0;

  std::printf(
      "Running %0.fs of traffic; killing node %d at t=%.0fs, rejoining at "
      "t=%.0fs...\n\n",
      config.duration_s, scenario.kill_node, scenario.kill_at_s,
      scenario.rejoin_at_s);

  auto result = dssp::sim::RunClusterSimulation(
      router, {dssp::sim::Tenant{&app, generator.get(), /*num_clients=*/120}},
      config, scenario);
  DSSP_CHECK_OK(result.status());
  const dssp::sim::SimResult& tenant = result->tenants[0];

  std::printf("Run summary:\n  %s\n\n", tenant.ToString().c_str());
  std::printf("Failover:\n");
  std::printf("  kill fired:        %s\n", result->kill_fired ? "yes" : "no");
  std::printf("  rejoin fired:      %s\n",
              result->rejoin_fired ? "yes" : "no");
  std::printf("  notices replayed:  %llu\n",
              static_cast<unsigned long long>(result->rejoin_replayed));
  std::printf("  failed client ops: %llu\n\n",
              static_cast<unsigned long long>(tenant.failed_ops));

  const auto route = router.route_stats();
  std::printf("Routing: %llu lookups, %llu replica-fallback hits, "
              "%llu lagging skips, %llu ring rebalances\n\n",
              static_cast<unsigned long long>(route.lookups),
              static_cast<unsigned long long>(route.replica_fallbacks),
              static_cast<unsigned long long>(route.lagging_skips),
              static_cast<unsigned long long>(route.rebalances));

  std::printf("%5s %8s %10s %8s %10s %9s %8s %9s\n", "node", "health",
              "lookups", "hits", "fallbacks", "warming", "pending",
              "entries");
  for (int i = 0; i < router.num_nodes(); ++i) {
    const auto stats = router.node_stats(i);
    std::printf("%5d %8s %10llu %8llu %10llu %9llu %8zu %9zu\n", i,
                dssp::cluster::NodeHealthName(stats.health),
                static_cast<unsigned long long>(stats.routed_lookups),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.replica_fallback_hits),
                static_cast<unsigned long long>(stats.warming_lookups),
                stats.bus_pending, stats.cache_entries);
  }
  const auto counters = router.membership().counters(scenario.kill_node);
  std::printf(
      "\nNode %d lifecycle: %llu suspect, %llu down, %llu rejoin "
      "transitions\n",
      scenario.kill_node,
      static_cast<unsigned long long>(counters.suspect_transitions),
      static_cast<unsigned long long>(counters.down_transitions),
      static_cast<unsigned long long>(counters.rejoins));

  // The demo's contract: failover is invisible to clients.
  DSSP_CHECK(result->kill_fired && result->rejoin_fired);
  DSSP_CHECK(tenant.failed_ops == 0);
  std::printf("\nOK: node kill + rejoin completed with zero failed ops.\n");
  return 0;
}
