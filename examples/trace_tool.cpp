// trace_tool: record benchmark-application traces to a file and replay them
// under any exposure configuration — the workflow behind every controlled
// comparison in EXPERIMENTS.md.
//
//   trace_tool record <app> <pages> <file> [seed]
//   trace_tool replay <app> <file> [view|stmt|template|blind|methodology]
//
// Example:
//   ./build/examples/trace_tool record bookstore 500 /tmp/bs.trace
//   ./build/examples/trace_tool replay bookstore /tmp/bs.trace view
//   ./build/examples/trace_tool replay bookstore /tmp/bs.trace blind

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "sim/trace.h"
#include "workloads/application.h"

namespace {

using dssp::analysis::ExposureAssignment;
using dssp::analysis::ExposureLevel;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool record <app> <pages> <file> [seed]\n"
               "  trace_tool replay <app> <file> "
               "[view|stmt|template|blind|methodology]\n");
  return 2;
}

struct System {
  dssp::service::DsspNode node;
  std::unique_ptr<dssp::service::ScalableApp> app;
  std::unique_ptr<dssp::workloads::Application> workload;
};

std::unique_ptr<System> Build(const std::string& name, uint64_t seed) {
  auto system = std::make_unique<System>();
  system->app = std::make_unique<dssp::service::ScalableApp>(
      name, &system->node, dssp::crypto::KeyRing::FromPassphrase("trace"));
  system->workload = dssp::workloads::MakeApplication(name);
  DSSP_CHECK_OK(system->workload->Setup(*system->app, /*scale=*/0.5, seed));
  DSSP_CHECK_OK(system->app->Finalize());
  return system;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];

  if (mode == "record") {
    if (argc < 5) return Usage();
    const std::string app_name = argv[2];
    const int pages = std::atoi(argv[3]);
    const std::string path = argv[4];
    const uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 7;

    auto system = Build(app_name, seed);
    auto generator = system->workload->NewSession(seed + 1);
    dssp::Rng rng(seed + 2);
    const auto trace = dssp::sim::RecordPages(*generator, rng, pages);

    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << "# app=" << app_name << " pages=" << pages << " seed=" << seed
        << "\n"
        << dssp::sim::SerializeTrace(trace);
    std::printf("recorded %zu operations from %d pages to %s\n",
                trace.size(), pages, path.c_str());
    return 0;
  }

  if (mode == "replay") {
    if (argc < 4) return Usage();
    const std::string app_name = argv[2];
    const std::string path = argv[3];
    const std::string level_name = argc > 4 ? argv[4] : "view";

    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto trace = dssp::sim::ParseTrace(buffer.str());
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }

    auto system = Build(app_name, 7);
    ExposureAssignment exposure = ExposureAssignment::FullExposure(
        system->app->templates().num_queries(),
        system->app->templates().num_updates());
    if (level_name == "methodology") {
      const auto& catalog = system->app->home().database().catalog();
      exposure = dssp::analysis::RunMethodology(
                     system->app->templates(), catalog,
                     system->workload->CompulsoryEncryption(catalog))
                     .final;
    } else {
      ExposureLevel level;
      if (level_name == "view") level = ExposureLevel::kView;
      else if (level_name == "stmt") level = ExposureLevel::kStmt;
      else if (level_name == "template") level = ExposureLevel::kTemplate;
      else if (level_name == "blind") level = ExposureLevel::kBlind;
      else return Usage();
      for (auto& l : exposure.query_levels) l = level;
      for (auto& l : exposure.update_levels) {
        l = level == ExposureLevel::kView ? ExposureLevel::kStmt : level;
      }
    }
    DSSP_CHECK_OK(system->app->SetExposure(exposure));

    auto stats = dssp::sim::ReplayTrace(*system->app, *trace);
    if (!stats.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "replayed %zu ops (%zu queries, %zu updates) at '%s': hit_rate=%.3f "
        "invalidated=%zu rows_returned=%zu\n",
        stats->queries + stats->updates, stats->queries, stats->updates,
        level_name.c_str(), stats->hit_rate(), stats->entries_invalidated,
        stats->rows_returned);
    return 0;
  }

  return Usage();
}
