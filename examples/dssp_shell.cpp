// dssp_shell: an interactive console for poking at a DSSP-backed
// application. Reads commands from stdin (works piped, too):
//
//   q <id> <param> [param...]   execute a query template instance
//   u <id> <param> [param...]   execute an update template instance
//   templates                   list templates with exposure levels
//   stats                       DSSP statistics
//   cache                       cache size
//   expose <id> <level>         set one template's exposure
//                               (blind|template|stmt|view)
//   methodology                 run the security design methodology & apply
//   help / quit
//
// Parameters: integers, doubles, or 'quoted strings'.
//
// Usage: ./build/examples/dssp_shell [app]       (default: toystore)

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/methodology.h"
#include "common/strings.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "workloads/application.h"

namespace {

using dssp::analysis::ExposureLevel;
using dssp::sql::Value;

bool ParseLevel(const std::string& text, ExposureLevel* out) {
  if (text == "blind") *out = ExposureLevel::kBlind;
  else if (text == "template") *out = ExposureLevel::kTemplate;
  else if (text == "stmt") *out = ExposureLevel::kStmt;
  else if (text == "view") *out = ExposureLevel::kView;
  else return false;
  return true;
}

// Parses whitespace-separated parameters; 'quoted' tokens become strings.
std::vector<Value> ParseParams(std::istringstream& in) {
  std::vector<Value> params;
  std::string token;
  while (in >> token) {
    if (token.size() >= 2 && token.front() == '\'') {
      std::string text = token.substr(1);
      while (!text.empty() && text.back() != '\'' && in >> token) {
        text += " " + token;
      }
      if (!text.empty() && text.back() == '\'') text.pop_back();
      params.emplace_back(text);
    } else if (token.find('.') != std::string::npos) {
      params.emplace_back(std::strtod(token.c_str(), nullptr));
    } else {
      params.emplace_back(
          static_cast<int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    }
  }
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "toystore";
  dssp::service::DsspNode node;
  dssp::service::ScalableApp app(
      name, &node, dssp::crypto::KeyRing::FromPassphrase("shell"));
  auto workload = dssp::workloads::MakeApplication(name);
  DSSP_CHECK_OK(workload->Setup(app, /*scale=*/0.5, /*seed=*/7));
  DSSP_CHECK_OK(app.Finalize());
  dssp::analysis::ExposureAssignment exposure = app.exposure();

  std::printf("dssp shell — %s (%zu queries, %zu updates). 'help' lists "
              "commands.\n",
              name.c_str(), app.templates().num_queries(),
              app.templates().num_updates());

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf(
          "  q <id> <params...> | u <id> <params...> | templates | stats |\n"
          "  cache | expose <id> <level> | methodology | quit\n");
    } else if (cmd == "templates") {
      for (size_t j = 0; j < app.templates().num_queries(); ++j) {
        const auto& t = app.templates().queries()[j];
        std::printf("  %-4s [%-8s] %s\n", t.id().c_str(),
                    ExposureLevelName(exposure.query_levels[j]),
                    t.ToSql().c_str());
      }
      for (size_t i = 0; i < app.templates().num_updates(); ++i) {
        const auto& t = app.templates().updates()[i];
        std::printf("  %-4s [%-8s] %s\n", t.id().c_str(),
                    ExposureLevelName(exposure.update_levels[i]),
                    t.ToSql().c_str());
      }
    } else if (cmd == "stats") {
      const auto& s = node.stats(name);
      std::printf("  lookups=%llu hits=%llu hit_rate=%.3f stores=%llu "
                  "updates=%llu invalidated=%llu\n",
                  (unsigned long long)s.lookups, (unsigned long long)s.hits,
                  s.hit_rate(), (unsigned long long)s.stores,
                  (unsigned long long)s.updates_observed,
                  (unsigned long long)s.entries_invalidated);
    } else if (cmd == "cache") {
      std::printf("  %zu entries\n", node.CacheSize(name));
    } else if (cmd == "q" || cmd == "u") {
      std::string id;
      if (!(in >> id)) {
        std::printf("  usage: %s <template-id> <params...>\n", cmd.c_str());
        continue;
      }
      const std::vector<Value> params = ParseParams(in);
      dssp::service::AccessStats stats;
      if (cmd == "q") {
        auto result = app.Query(id, params, &stats);
        if (!result.ok()) {
          std::printf("  error: %s\n", result.status().ToString().c_str());
          continue;
        }
        std::printf("  [%s]\n%s\n", stats.cache_hit ? "hit" : "miss",
                    result->ToDebugString(10).c_str());
      } else {
        auto effect = app.Update(id, params, &stats);
        if (!effect.ok()) {
          std::printf("  error: %s\n", effect.status().ToString().c_str());
          continue;
        }
        std::printf("  %zu rows affected, %zu cache entries invalidated\n",
                    effect->rows_affected, stats.entries_invalidated);
      }
    } else if (cmd == "expose") {
      std::string id;
      std::string level_text;
      ExposureLevel level;
      if (!(in >> id >> level_text) || !ParseLevel(level_text, &level)) {
        std::printf("  usage: expose <id> blind|template|stmt|view\n");
        continue;
      }
      const size_t qi = app.templates().QueryIndex(id);
      const size_t ui = app.templates().UpdateIndex(id);
      if (qi != dssp::templates::TemplateSet::kNpos) {
        exposure.query_levels[qi] = level;
      } else if (ui != dssp::templates::TemplateSet::kNpos) {
        exposure.update_levels[ui] = level;
      } else {
        std::printf("  unknown template %s\n", id.c_str());
        continue;
      }
      const dssp::Status status = app.SetExposure(exposure);
      std::printf("  %s (cache cleared)\n", status.ToString().c_str());
    } else if (cmd == "methodology") {
      const auto& catalog = app.home().database().catalog();
      const auto report = dssp::analysis::RunMethodology(
          app.templates(), catalog, workload->CompulsoryEncryption(catalog));
      std::printf("%s", report.ToString().c_str());
      exposure = report.final;
      DSSP_CHECK_OK(app.SetExposure(exposure));
      std::printf("  applied.\n");
    } else {
      std::printf("  unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  std::printf("\n");
  return 0;
}
