// Explain tool for the ahead-of-time invalidation-plan compiler: dumps the
// compiled per-pair decision matrix for an application, in the same
// update-template x query-template pair layout as the Table 7 IPM
// characterization, plus per-kind totals and (optionally) the compiler's
// human-readable rationale for every pair.
//
// Usage:  ./build/examples/explain_plan [app] [--rationales]
//
// Matrix cells:
//   .  never-invalidate   (A = 0: the pair can be skipped wholesale)
//   !  always-invalidate  (B = A for every binding; insertions)
//   p  param-program      (compiled per-binding predicate program)
//   v  view-test          (always invalidate below view level; C cell)
//   F  solver-fallback    (uncompilable shape; general solver at runtime)

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/plan.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "workloads/application.h"

namespace {

char CellFor(dssp::analysis::PlanKind kind) {
  switch (kind) {
    case dssp::analysis::PlanKind::kNeverInvalidate:
      return '.';
    case dssp::analysis::PlanKind::kAlwaysInvalidate:
      return '!';
    case dssp::analysis::PlanKind::kParamProgram:
      return 'p';
    case dssp::analysis::PlanKind::kViewTest:
      return 'v';
    case dssp::analysis::PlanKind::kSolverFallback:
      return 'F';
  }
  return '?';
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "bookstore";
  bool rationales = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rationales") == 0) {
      rationales = true;
    } else {
      name = argv[i];
    }
  }

  dssp::service::DsspNode node;
  dssp::service::ScalableApp app(
      name, &node, dssp::crypto::KeyRing::FromPassphrase("explain"));
  auto workload = dssp::workloads::MakeApplication(name);
  DSSP_CHECK_OK(workload->Setup(app, /*scale=*/0.25, /*seed=*/1));
  DSSP_CHECK_OK(app.Finalize());
  const auto& templates = app.templates();
  const auto& catalog = app.home().database().catalog();

  const auto plan =
      dssp::analysis::InvalidationPlan::Compile(templates, catalog);
  const auto summary = plan.Summarize();

  std::printf("Compiled invalidation plan — %s (%zu update x %zu query"
              " pairs)\n\n",
              name.c_str(), plan.num_updates(), plan.num_queries());
  std::printf("Legend: . never-invalidate   ! always-invalidate   "
              "p param-program\n        v view-test          F "
              "solver-fallback\n\n");

  std::printf("%-6s", "");
  for (size_t q = 0; q < plan.num_queries(); ++q) {
    std::printf(" %3s", templates.queries()[q].id().c_str());
  }
  std::printf("\n");
  for (size_t u = 0; u < plan.num_updates(); ++u) {
    std::printf("%-6s", templates.updates()[u].id().c_str());
    for (size_t q = 0; q < plan.num_queries(); ++q) {
      std::printf(" %3c", CellFor(plan.pair(u, q).kind));
    }
    std::printf("\n");
  }

  std::printf("\n%-11s %6s %7s %8s %5s %9s | %6s\n", "", "never", "always",
              "program", "view", "fallback", "total");
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("%-11s %6zu %7zu %8zu %5zu %9zu | %6zu\n", name.c_str(),
              summary.never_invalidate, summary.always_invalidate,
              summary.param_program, summary.view_test,
              summary.solver_fallback, summary.total());

  if (rationales) {
    std::printf("\nPer-pair rationales\n%s\n", std::string(60, '-').c_str());
    for (size_t u = 0; u < plan.num_updates(); ++u) {
      for (size_t q = 0; q < plan.num_queries(); ++q) {
        const auto& pair = plan.pair(u, q);
        std::printf("%-4s x %-4s  [%s]\n    %s\n",
                    templates.updates()[u].id().c_str(),
                    templates.queries()[q].id().c_str(),
                    dssp::analysis::PlanKindName(pair.kind),
                    pair.rationale.c_str());
      }
    }
  } else {
    std::printf("\n(rerun with --rationales for the compiler's per-pair"
                " justification)\n");
  }
  return 0;
}
