// Quickstart: the paper's toystore example end to end — a home server, a
// shared DSSP node, the scalability-conscious security design methodology,
// and cache/invalidation behaviour under the resulting exposure levels.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "workloads/toystore.h"

using dssp::analysis::ExposureLevelName;
using dssp::sql::Value;

int main() {
  // One shared DSSP node; the application keeps its keys at home.
  dssp::service::DsspNode dssp;
  dssp::service::ScalableApp app(
      "toystore", &dssp,
      dssp::crypto::KeyRing::FromPassphrase("toystore-master-secret"));

  // Schema, templates, data.
  dssp::workloads::ToystoreApplication toystore;
  DSSP_CHECK_OK(toystore.Setup(app, /*scale=*/1.0, /*seed=*/7));
  DSSP_CHECK_OK(app.Finalize());

  std::printf("== Toystore templates ==\n");
  for (const auto& q : app.templates().queries()) {
    std::printf("  %-3s %s\n", q.id().c_str(), q.ToSql().c_str());
  }
  for (const auto& u : app.templates().updates()) {
    std::printf("  %-3s %s\n", u.id().c_str(), u.ToSql().c_str());
  }

  // Run the security design methodology: Step 1 encrypts credit-card data
  // (compulsory), Step 2 reduces exposure wherever the IPM analysis proves
  // it free.
  const dssp::analysis::CompulsoryPolicy policy =
      toystore.CompulsoryEncryption(app.home().database().catalog());
  const dssp::analysis::SecurityReport report = dssp::analysis::RunMethodology(
      app.templates(), app.home().database().catalog(), policy);
  std::printf("\n== Security methodology result ==\n%s",
              report.ToString().c_str());
  DSSP_CHECK_OK(app.SetExposure(report.final));

  // Serve some traffic.
  std::printf("\n== Traffic ==\n");
  dssp::service::AccessStats stats;

  auto r1 = app.Query("Q2", {Value(5)}, &stats);
  DSSP_CHECK(r1.ok());
  std::printf("Q2(5) [%s] -> %s\n", stats.cache_hit ? "hit" : "miss",
              r1->ToDebugString().c_str());

  auto r2 = app.Query("Q2", {Value(5)}, &stats);
  DSSP_CHECK(r2.ok());
  std::printf("Q2(5) again [%s]\n", stats.cache_hit ? "hit" : "miss");

  // An unrelated update (credit-card insert) must NOT invalidate Q2's
  // cached result; deleting toy 5 must.
  auto u2 = app.Update("U2", {Value(90), Value("4000-1111-000090"),
                              Value(10090)},
                       &stats);
  DSSP_CHECK(u2.ok());
  std::printf("U2(card for customer 90): %zu entries invalidated\n",
              stats.entries_invalidated);

  auto r3 = app.Query("Q2", {Value(5)}, &stats);
  DSSP_CHECK(r3.ok());
  std::printf("Q2(5) after U2 [%s]\n", stats.cache_hit ? "hit" : "miss");

  auto u1 = app.Update("U1", {Value(5)}, &stats);
  DSSP_CHECK(u1.ok());
  std::printf("U1(delete toy 5): %zu entries invalidated\n",
              stats.entries_invalidated);

  auto r4 = app.Query("Q2", {Value(5)}, &stats);
  DSSP_CHECK(r4.ok());
  std::printf("Q2(5) after U1 [%s] -> %zu rows\n",
              stats.cache_hit ? "hit" : "miss", r4->num_rows());

  const auto& s = dssp.stats("toystore");
  std::printf("\nDSSP stats: lookups=%llu hits=%llu hit_rate=%.2f "
              "invalidated=%llu\n",
              static_cast<unsigned long long>(s.lookups),
              static_cast<unsigned long long>(s.hits), s.hit_rate(),
              static_cast<unsigned long long>(s.entries_invalidated));
  return 0;
}
