// Bookstore demo: the TPC-W-style application from the paper's evaluation,
// run end to end — schema + templates, the security design methodology,
// and a simulated flash crowd measured under the resulting exposure levels
// versus full encryption.
//
// Build & run:  ./build/examples/bookstore_demo

#include <cstdio>

#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "sim/simulator.h"
#include "workloads/application.h"

using dssp::analysis::ExposureAssignment;
using dssp::analysis::ExposureLevel;

namespace {

dssp::sim::SimResult Simulate(const ExposureAssignment& exposure,
                              int users) {
  dssp::service::DsspNode node;
  dssp::service::ScalableApp app(
      "bookstore", &node,
      dssp::crypto::KeyRing::FromPassphrase("bookstore-secret"));
  auto workload = dssp::workloads::MakeApplication("bookstore");
  DSSP_CHECK_OK(workload->Setup(app, /*scale=*/1.0, /*seed=*/42));
  DSSP_CHECK_OK(app.Finalize());
  DSSP_CHECK_OK(app.SetExposure(exposure));

  auto session = workload->NewSession(1);
  dssp::sim::SimConfig config;
  config.duration_s = 120;  // Two virtual minutes of flash crowd.
  auto result = dssp::sim::RunSimulation(app, *session, users, config);
  DSSP_CHECK(result.ok());
  return *result;
}

}  // namespace

int main() {
  // Build once just to run the static analysis.
  dssp::service::DsspNode node;
  dssp::service::ScalableApp app(
      "bookstore", &node,
      dssp::crypto::KeyRing::FromPassphrase("bookstore-secret"));
  auto workload = dssp::workloads::MakeApplication("bookstore");
  DSSP_CHECK_OK(workload->Setup(app, 1.0, 42));
  DSSP_CHECK_OK(app.Finalize());

  const auto& catalog = app.home().database().catalog();
  std::printf("bookstore: %zu query templates, %zu update templates, "
              "%zu master rows\n",
              app.templates().num_queries(), app.templates().num_updates(),
              app.home().database().TotalRows());

  const dssp::analysis::SecurityReport report =
      dssp::analysis::RunMethodology(
          app.templates(), catalog, workload->CompulsoryEncryption(catalog));
  std::printf("\n== Methodology outcome ==\n%s\n",
              report.ToString().c_str());
  std::printf("%zu of %zu query templates get encrypted results for free.\n",
              report.QueriesWithEncryptedResults(),
              app.templates().num_queries());

  // Flash crowd: 400 users hit the store.
  constexpr int kUsers = 400;
  std::printf("\n== Flash crowd: %d concurrent users, 2 minutes ==\n",
              kUsers);

  const dssp::sim::SimResult secured = Simulate(report.final, kUsers);
  std::printf("scalability-conscious security: %s\n",
              secured.ToString().c_str());

  ExposureAssignment blind = ExposureAssignment::FullEncryption(
      app.templates().num_queries(), app.templates().num_updates());
  const dssp::sim::SimResult full_encryption = Simulate(blind, kUsers);
  std::printf("blanket encryption:             %s\n",
              full_encryption.ToString().c_str());

  std::printf(
      "\nWith the methodology's exposure levels the store absorbs the crowd "
      "(p90 %.2fs);\nblanket encryption forces blind invalidation and the "
      "home server melts (p90 %.2fs).\n",
      secured.p90_response_s, full_encryption.p90_response_s);
  return 0;
}
