// Degraded-mode demo: the toystore tenant on a faulty WAN. Shows the
// hardened wire path end to end — integrity-sealed frames, retry with
// backoff, nonce-deduplicated updates — then cuts the home server off
// entirely and serves queries from the staleness-bounded side store.
//
// Build & run:  ./build/examples/degraded_mode_demo
//
// Knobs (see DESIGN.md "Fault-tolerant wire path"): FaultProfile
// drop/corrupt/duplicate/delay rates, RetryPolicy attempts/timeout/backoff/
// deadline, WirePolicy::stale_serve_bound, DsspNode::SetStaleRetention.

#include <cstdio>
#include <memory>

#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/channel.h"
#include "workloads/toystore.h"

using dssp::service::AccessStats;
using dssp::service::DirectChannel;
using dssp::service::FaultInjectingChannel;
using dssp::service::FaultProfile;
using dssp::service::WireCounters;
using dssp::service::WirePolicy;
using dssp::sql::Value;

namespace {

void PrintCounters(const dssp::service::ScalableApp& app) {
  const WireCounters wc = app.wire_counters();
  std::printf(
      "  wire: attempts=%llu retries=%llu timeouts=%llu corrupt_dropped=%llu "
      "stale_serves=%llu failures=%llu\n",
      static_cast<unsigned long long>(wc.attempts),
      static_cast<unsigned long long>(wc.retries),
      static_cast<unsigned long long>(wc.timeouts),
      static_cast<unsigned long long>(wc.corrupt_frames_dropped),
      static_cast<unsigned long long>(wc.stale_serves),
      static_cast<unsigned long long>(wc.failures));
  std::printf(
      "  home: updates_applied=%llu duplicates_suppressed=%llu\n",
      static_cast<unsigned long long>(app.home().updates_applied()),
      static_cast<unsigned long long>(app.home().duplicates_suppressed()));
}

}  // namespace

int main() {
  dssp::service::DsspNode dssp;
  dssp::service::ScalableApp app(
      "toystore", &dssp,
      dssp::crypto::KeyRing::FromPassphrase("toystore-master-secret"));
  dssp::workloads::ToystoreApplication toystore;
  DSSP_CHECK_OK(toystore.Setup(app, /*scale=*/1.0, /*seed=*/7));
  DSSP_CHECK_OK(app.Finalize());

  // Harden the wire: sealed frames, 8 attempts with exponential backoff,
  // and permission to serve entries up to 4 observed updates stale when the
  // home server cannot be reached. Retain up to 1024 invalidated entries.
  WirePolicy policy;
  policy.retry.max_attempts = 8;
  policy.stale_serve_bound = 4;
  app.SetWirePolicy(policy);
  dssp.SetStaleRetention("toystore", 1024);

  // A rough WAN: 5% loss each way, 2% corruption, 3% duplication.
  auto direct = std::make_unique<DirectChannel>(app.home());
  FaultProfile rough;
  rough.drop_request = 0.05;
  rough.drop_response = 0.05;
  rough.corrupt_request = 0.02;
  rough.corrupt_response = 0.02;
  rough.duplicate_request = 0.03;
  rough.delay_probability = 0.05;
  app.SetChannel(
      std::make_unique<FaultInjectingChannel>(*direct, rough, /*seed=*/1));

  std::printf("== Phase 1: lossy WAN, retries keep answers exact ==\n");
  int queries_ok = 0;
  int updates_ok = 0;
  for (int round = 0; round < 400; ++round) {
    const int64_t toy = round % 40 + 1;
    if (round % 5 == 4) {
      if (app.Update("U1", {Value(toy)}).ok()) ++updates_ok;
    } else {
      if (app.Query("Q2", {Value(toy)}).ok()) ++queries_ok;
    }
  }
  std::printf("  %d queries and %d updates served exactly, despite faults\n",
              queries_ok, updates_ok);
  PrintCounters(app);

  // Cache something, invalidate it once, then sever the link.
  std::printf("\n== Phase 2: home server outage, degraded mode ==\n");
  const auto warm = app.Query("Q2", {Value(50)});
  DSSP_CHECK(warm.ok());
  const auto inval = app.Update("U1", {Value(50)});  // Invalidates it.
  DSSP_CHECK(inval.ok());
  FaultProfile outage;
  outage.drop_request = 1.0;  // Nothing gets through.
  app.SetChannel(
      std::make_unique<FaultInjectingChannel>(*direct, outage, /*seed=*/2));

  AccessStats stats;
  auto degraded = app.Query("Q2", {Value(50)}, &stats);
  std::printf("  Q2(50) during outage: %s%s\n",
              degraded.ok() ? "answered" : "failed",
              stats.served_stale ? " from the stale store (bounded k=4)"
                                 : "");
  auto cold = app.Query("Q2", {Value(77)}, &stats);
  std::printf("  Q2(77) during outage (never cached): %s\n",
              cold.ok() ? "answered" : cold.status().message().c_str());
  PrintCounters(app);

  std::printf(
      "\nThe nonce dedup line is the at-most-once guarantee: every retried "
      "or\nduplicated update frame the home server suppressed instead of "
      "applying twice.\n");
  return 0;
}
