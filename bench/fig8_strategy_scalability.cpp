// Reproduces Figure 8: scalability (max concurrent users with 90% of page
// responses under two seconds) of each benchmark application under the four
// coarse-grain invalidation strategies. Paper shape: for every application
// MVIS >= MSIS >= MTIS >> MBS, and bboard (~10 DB requests per page)
// collapses hardest under coarse invalidation.
//
// Environment knobs (see bench/bench_util.h): DSSP_BENCH_DURATION (the
// paper's runs are 600 s; default 60 s here), DSSP_BENCH_SCALE,
// DSSP_BENCH_MAX_USERS.
//
// Flags: --json <path> additionally writes the full result matrix (max
// users plus the latency/hit-rate profile at that load) as one JSON file.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using dssp::analysis::ExposureLevel;

struct StrategyPoint {
  const char* name;
  ExposureLevel query_level;
  ExposureLevel update_level;
};

// Uniform exposure levels select the uniform strategy (Figure 6).
constexpr StrategyPoint kStrategies[] = {
    {"MVIS", ExposureLevel::kView, ExposureLevel::kStmt},
    {"MSIS", ExposureLevel::kStmt, ExposureLevel::kStmt},
    {"MTIS", ExposureLevel::kTemplate, ExposureLevel::kTemplate},
    {"MBS", ExposureLevel::kBlind, ExposureLevel::kBlind},
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = dssp::bench::FlagValue(argc, argv, "--json");
  std::vector<dssp::bench::JsonObject> json_rows;
  const dssp::sim::SimConfig config = dssp::bench::BenchSimConfig();
  std::printf(
      "Figure 8 — scalability by invalidation strategy "
      "(duration=%.0fs, scale=%.2f, p90 limit=%.1fs)\n\n",
      config.duration_s, dssp::bench::BenchScale(),
      config.response_time_limit_s);
  std::printf("%-11s %8s %8s %8s %8s\n", "Application", "MVIS", "MSIS",
              "MTIS", "MBS");
  std::printf("%s\n", std::string(50, '-').c_str());

  for (std::string_view name : dssp::workloads::kEvaluationApps) {
    std::printf("%-11s", std::string(name).c_str());
    std::fflush(stdout);
    for (const StrategyPoint& strategy : kStrategies) {
      auto result = dssp::bench::MeasureScalability(
          std::string(name),
          [&](const dssp::service::ScalableApp& app) {
            return dssp::bench::UniformExposure(app, strategy.query_level,
                                                strategy.update_level);
          },
          config);
      DSSP_CHECK(result.ok());
      std::printf(" %8d", result->max_users);
      std::fflush(stdout);
      if (json_path != nullptr) {
        dssp::bench::JsonObject row;
        row.Set("app", std::string(name));
        row.Set("strategy", strategy.name);
        row.Set("max_users", result->max_users);
        // The profile at the highest passing probe (the scalability point).
        const dssp::sim::SimResult* best = nullptr;
        for (const auto& probe : result->probes) {
          if (probe.MeetsSlo(config) &&
              (best == nullptr || probe.num_clients > best->num_clients)) {
            best = &probe;
          }
        }
        if (best != nullptr) {
          dssp::bench::FillResultFields(*best, config.duration_s,
                                        config.warmup_s, &row);
        }
        json_rows.push_back(std::move(row));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: MVIS >= MSIS >= MTIS >> MBS per application.\n");
  if (json_path != nullptr) {
    dssp::bench::JsonObject doc;
    doc.Set("experiment", "fig8_strategy_scalability");
    doc.Set("duration_s", config.duration_s);
    doc.Set("warmup_s", config.warmup_s);
    doc.Set("scale", dssp::bench::BenchScale());
    doc.Set("p90_limit_s", config.response_time_limit_s);
    doc.SetRaw("rows", dssp::bench::JsonArray(json_rows));
    dssp::bench::WriteJsonFile(json_path, doc);
  }
  return 0;
}
