#ifndef DSSP_BENCH_MICRO_UTIL_H_
#define DSSP_BENCH_MICRO_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace dssp::bench {

// Drop-in replacement for BENCHMARK_MAIN() that also understands the
// harness-wide `--json <path>` flag (the experiment binaries' spelling),
// translating it to google-benchmark's --benchmark_out/--benchmark_out_format
// pair. The flag must be stripped before benchmark::Initialize, which
// rejects arguments it does not recognize.
inline int RunBenchmarkMain(int argc, char** argv) {
  std::vector<char*> args;
  std::string out_flag;
  std::string fmt_flag;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      out_flag = std::string("--benchmark_out=") + argv[i + 1];
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      out_flag = std::string("--benchmark_out=") + (argv[i] + 7);
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!out_flag.empty()) {
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace dssp::bench

#endif  // DSSP_BENCH_MICRO_UTIL_H_
