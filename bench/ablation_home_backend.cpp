// Ablation: the pluggable home-backend subsystem — prepared-statement
// cache, health-checked connection pool, and N-tenants-x-M-hosts topology.
//
// Part 1 (wall clock): the prepared-statement cache vs. prepare-per-call,
// on the bookstore workload generator's own query mix. The measurement is
// the execution stage — the part the cache changes: prepared-once replays
// `QueryProgram::Execute` per query, prepare-per-call pays
// `QueryProgram::Compile` + Execute every time. Results are checked
// bit-identical between the two paths before anything is timed.
//
// As in the vectorized-engine ablation, one gate template anchors the
// release gate independent of the workload's data-dependent template mix:
// an order-line-by-key read with the full row projected and two range
// guards, the purest case of what the cache targets — the key equality is
// an index probe, so execution is O(1) while per-call compilation (five
// output columns, three predicates) is the entire per-query cost the cache
// removes. The workload
// mix is swept for coverage and reported by access-path class (`point` =
// every FROM slot an index probe; scan-bound templates spend their time in
// the shared scan on both sides and dilute toward parity). The same mix is
// then driven end-to-end through `HandleQuery` with the kill switch thrown
// and restored, reporting how the stage win dilutes once the shared
// decrypt/parse/serialize pipeline is around it, plus the backend's own
// hit/compile counters as evidence the cache actually engaged.
//
//   GATE 1  gate-probe prepared executed-query throughput
//           >= 3x prepare-per-call.
//
// Part 2 (virtual time): pool saturation is backpressure, not loss. A
// tenants x hosts x pool-size sweep runs the cluster simulator with home
// service times inflated 10x so an undersized pool actually saturates.
// Queued leases and wait time are reported per cell.
//
//   GATE 2  zero failed client operations across EVERY cell, including the
//           fully saturated one (all tenants on one host, one connection),
//           AND the saturated cell shows queued leases — proof the pool
//           queues under overload instead of shedding.
//
// Flags: --json <path> machine-readable results; --min-time <s> per-side
// wall-clock measurement time (default 0.3; CI smoke passes 0.05);
// --scale <f> database scale (default 0.5).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "cluster/router.h"
#include "dssp/home_server.h"
#include "engine/program.h"
#include "engine/table.h"
#include "sim/cluster_sim.h"
#include "sql/parser.h"
#include "templates/template.h"
#include "workloads/application.h"

namespace {

using dssp::Rng;
using dssp::backend::HomeBackendStats;
using dssp::sim::ClusterSimResult;
using dssp::sim::HomeTopology;
using dssp::sim::SimConfig;
using dssp::sim::Tenant;

using Clock = std::chrono::steady_clock;

constexpr double kCacheGate = 3.0;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// ----- Part 1: statement cache vs. prepare-per-call (wall clock). -----

struct CacheMeasurement {
  // Execution stage (what the cache changes): prepared replay vs.
  // Compile+Execute per call. The synthetic single-row probe gates; the
  // workload mix is reported by access-path class for coverage.
  double gate_prepared_qps = 0;
  double gate_per_call_qps = 0;
  double gate_speedup = 0;
  std::string gate_table;
  double point_prepared_qps = 0;
  double point_per_call_qps = 0;
  double point_speedup = 0;
  uint64_t point_ops = 0;
  double scan_prepared_qps = 0;
  double scan_per_call_qps = 0;
  double scan_speedup = 0;
  uint64_t scan_ops = 0;
  // End-to-end HandleQuery (shared pipeline around the stage), via the
  // backend's kill switch.
  double e2e_cached_qps = 0;
  double e2e_uncached_qps = 0;
  uint64_t distinct_templates = 0;
  uint64_t ops = 0;
  uint64_t cache_hits = 0;             // Backend counter, cached e2e pass.
  uint64_t unprepared_executions = 0;  // Backend counter, kill-switch pass.
  HomeBackendStats final_stats;
};

CacheMeasurement MeasureStatementCache(double scale, double min_time) {
  CacheMeasurement m;

  // Concrete SELECT instances from the workload's own generator: the query
  // mix (and its template skew) is the application's, not a synthetic one.
  auto system = dssp::bench::BuildSystem("bookstore", scale, 17);
  dssp::service::HomeServer& backend = system->app->home();
  const dssp::engine::Database& db = backend.database();
  auto generator = system->workload->NewSession(23);
  Rng rng(91);

  struct Op {
    size_t index = 0;
    std::vector<dssp::sql::Value> params;
    std::string encrypted;
  };
  std::vector<Op> ops;
  std::set<size_t> seen;
  while (ops.size() < 64) {
    for (const dssp::sim::DbOp& op : generator->NextPage(rng)) {
      if (op.is_update) continue;
      const size_t index = system->app->templates().QueryIndex(op.template_id);
      DSSP_CHECK(index != dssp::templates::TemplateSet::kNpos);
      const dssp::templates::QueryTemplate& tmpl =
          system->app->templates().queries()[index];
      // Only templates the backend can prepare take part (the others run
      // the interpreter on both sides and would measure nothing).
      if (!dssp::engine::QueryProgram::Compile(db.catalog(),
                                               tmpl.statement().select())
               .ok()) {
        continue;
      }
      Op prepared;
      prepared.index = index;
      prepared.params = op.params;
      prepared.encrypted = backend.statement_cipher().Encrypt(
          dssp::sql::ToSql(tmpl.Bind(op.params)));
      seen.insert(index);
      ops.push_back(std::move(prepared));
      if (ops.size() >= 64) break;
    }
  }
  m.distinct_templates = seen.size();
  m.ops = ops.size();

  // Prepare once per template — the cache's steady state — and check both
  // paths bit-identical before timing anything.
  std::vector<std::unique_ptr<dssp::engine::QueryProgram>> programs;
  for (const Op& op : ops) {
    if (op.index >= programs.size()) programs.resize(op.index + 1);
    const dssp::templates::QueryTemplate& tmpl =
        system->app->templates().queries()[op.index];
    auto compiled = dssp::engine::QueryProgram::Compile(
        db.catalog(), tmpl.statement().select());
    DSSP_CHECK(compiled.ok());
    const auto fresh = compiled->Execute(db, op.params);
    DSSP_CHECK(fresh.ok());
    if (programs[op.index] == nullptr) {
      programs[op.index] = std::make_unique<dssp::engine::QueryProgram>(
          std::move(compiled).value());
    }
    const auto replayed = programs[op.index]->Execute(db, op.params);
    DSSP_CHECK(replayed.ok());
    DSSP_CHECK(fresh->Serialize() == replayed->Serialize());
  }

  // Execution stage, both sides, per access-path class. The class split
  // mirrors the vectorized ablation: `point` programs never touch a full
  // scan, so compile amortization is the whole story there.
  std::vector<Op> point_ops, scan_ops;
  for (Op& op : ops) {
    (programs[op.index]->uses_full_scan() ? scan_ops : point_ops)
        .push_back(op);
  }
  m.point_ops = point_ops.size();
  m.scan_ops = scan_ops.size();
  const auto measure_stage = [&](const std::vector<Op>& subset,
                                 bool prepared) {
    if (subset.empty()) return 0.0;
    uint64_t execs = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    while (elapsed < min_time) {
      for (const Op& op : subset) {
        if (prepared) {
          const auto result = programs[op.index]->Execute(db, op.params);
          DSSP_CHECK(result.ok());
        } else {
          const dssp::templates::QueryTemplate& tmpl =
              system->app->templates().queries()[op.index];
          auto compiled = dssp::engine::QueryProgram::Compile(
              db.catalog(), tmpl.statement().select());
          DSSP_CHECK(compiled.ok());
          const auto result = compiled->Execute(db, op.params);
          DSSP_CHECK(result.ok());
        }
      }
      execs += subset.size();
      elapsed = Seconds(Clock::now() - start);
    }
    return static_cast<double>(execs) / elapsed;
  };
  m.point_prepared_qps = measure_stage(point_ops, true);
  m.point_per_call_qps = measure_stage(point_ops, false);
  m.point_speedup = m.point_per_call_qps > 0
                        ? m.point_prepared_qps / m.point_per_call_qps
                        : 0;
  m.scan_prepared_qps = measure_stage(scan_ops, true);
  m.scan_per_call_qps = measure_stage(scan_ops, false);
  m.scan_speedup = m.scan_per_call_qps > 0
                       ? m.scan_prepared_qps / m.scan_per_call_qps
                       : 0;

  // Gate probe: an order-line-by-key lookup with the full row projected
  // and quantity/discount guards — a realistic OLTP point read. The key
  // equality is served by the hash index, so execution is O(1), while
  // compilation resolves five output columns and three predicates: the
  // per-call compile is the entire per-query difference.
  {
    const dssp::engine::Table& table = db.GetTable("order_line");
    const size_t key_col = *table.schema().ColumnIndex("ol_id");
    const size_t qty_col = *table.schema().ColumnIndex("ol_qty");
    m.gate_table = "order_line";
    const dssp::sql::Statement gate_stmt = dssp::sql::ParseOrDie(
        "SELECT ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount "
        "FROM order_line WHERE ol_id = ? AND ol_qty >= ? AND ol_qty <= ?");
    auto gate_program =
        dssp::engine::QueryProgram::Compile(db.catalog(), gate_stmt.select());
    DSSP_CHECK(gate_program.ok());
    DSSP_CHECK(!gate_program->uses_full_scan());  // It IS an index probe.

    std::vector<std::vector<dssp::sql::Value>> bindings;
    while (bindings.size() < 8) {
      const size_t slot = rng.NextBelow(table.slot_count());
      if (!table.IsLive(slot)) continue;
      const std::vector<dssp::sql::Value> row = table.RowAt(slot);
      // Guards bracket the row's own quantity, so the probe returns it.
      bindings.push_back({row[key_col], row[qty_col], row[qty_col]});
    }
    for (const std::vector<dssp::sql::Value>& params : bindings) {
      auto fresh = dssp::engine::QueryProgram::Compile(db.catalog(),
                                                       gate_stmt.select());
      DSSP_CHECK(fresh.ok());
      const auto a = fresh->Execute(db, params);
      const auto b = gate_program->Execute(db, params);
      DSSP_CHECK(a.ok() && b.ok());
      DSSP_CHECK(a->Serialize() == b->Serialize());
    }
    for (const bool prepared : {true, false}) {
      uint64_t execs = 0;
      const auto start = Clock::now();
      double elapsed = 0;
      while (elapsed < min_time) {
        for (const std::vector<dssp::sql::Value>& params : bindings) {
          if (prepared) {
            const auto result = gate_program->Execute(db, params);
            DSSP_CHECK(result.ok());
          } else {
            auto compiled = dssp::engine::QueryProgram::Compile(
                db.catalog(), gate_stmt.select());
            DSSP_CHECK(compiled.ok());
            const auto result = compiled->Execute(db, params);
            DSSP_CHECK(result.ok());
          }
        }
        execs += bindings.size();
        elapsed = Seconds(Clock::now() - start);
      }
      (prepared ? m.gate_prepared_qps : m.gate_per_call_qps) =
          static_cast<double>(execs) / elapsed;
    }
    m.gate_speedup = m.gate_per_call_qps > 0
                         ? m.gate_prepared_qps / m.gate_per_call_qps
                         : 0;
  }

  // End-to-end through the backend, flipping its own kill switch; the
  // counters prove which path each pass took.
  for (const Op& op : ops) {  // Warm the per-connection cache.
    const auto warm = backend.HandleQuery(op.encrypted, true);
    DSSP_CHECK(warm.ok());
  }
  for (const bool cached : {true, false}) {
    backend.SetStatementCacheEnabled(cached);
    const HomeBackendStats before = backend.Stats();
    uint64_t execs = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    while (elapsed < min_time) {
      for (const Op& op : ops) {
        const auto result = backend.HandleQuery(op.encrypted, true);
        DSSP_CHECK(result.ok());
      }
      execs += ops.size();
      elapsed = Seconds(Clock::now() - start);
    }
    const double qps = static_cast<double>(execs) / elapsed;
    const HomeBackendStats after = backend.Stats();
    if (cached) {
      m.e2e_cached_qps = qps;
      m.cache_hits = after.statements.hits - before.statements.hits;
    } else {
      m.e2e_uncached_qps = qps;
      m.unprepared_executions = after.statements.unprepared_executions -
                                before.statements.unprepared_executions;
    }
  }
  backend.SetStatementCacheEnabled(true);
  m.final_stats = backend.Stats();
  return m;
}

// ----- Part 2: tenants x hosts x pool-size saturation sweep. -----

struct SweepCell {
  int tenants = 0;
  int hosts = 0;
  int pool_size = 0;
  double throughput = 0;
  double p90_s = 0;
  uint64_t home_ops = 0;
  uint64_t failed_ops = 0;
  uint64_t leases_queued = 0;
  double wait_s_total = 0;
  double wait_s_max = 0;
  uint64_t catalogs_loaded = 0;
};

struct TenantSystem {
  std::unique_ptr<dssp::service::ScalableApp> app;
  std::unique_ptr<dssp::workloads::Application> workload;
  std::unique_ptr<dssp::sim::SessionGenerator> generator;
};

SweepCell RunCell(int num_tenants, int num_hosts, int pool_size,
                  double scale) {
  static const char* kApps[] = {"bookstore", "auction", "bboard", "toystore"};
  dssp::cluster::ClusterOptions options;
  options.num_nodes = 2;
  dssp::cluster::ClusterRouter router(options);

  std::vector<TenantSystem> systems;
  std::vector<Tenant> tenants;
  for (int t = 0; t < num_tenants; ++t) {
    TenantSystem system;
    const char* name = kApps[t % 4];
    system.app = std::make_unique<dssp::service::ScalableApp>(
        name + std::string("-") + std::to_string(t), &router,
        dssp::crypto::KeyRing::FromPassphrase("bench-home-backend"));
    system.workload = dssp::workloads::MakeApplication(name);
    DSSP_CHECK_OK(system.workload->Setup(*system.app, scale, 17 + t));
    DSSP_CHECK_OK(system.app->Finalize());
    system.generator = system.workload->NewSession(23 + t);
    systems.push_back(std::move(system));
  }
  for (TenantSystem& system : systems) {
    tenants.push_back(Tenant{system.app.get(), system.generator.get(), 25});
  }

  // Inflated home service times: at pool_size=1 the shared host MUST
  // saturate, which is the regime the gate inspects.
  SimConfig config;
  config.duration_s = 30.0;
  config.think_time_mean_s = 1.0;
  config.dssp_workers = 2;
  config.seed = 31;
  config.home_query_base_s = 0.100;
  config.home_update_base_s = 0.080;

  HomeTopology topology;
  topology.num_hosts = num_hosts;
  topology.pool_size = pool_size;

  auto result = dssp::sim::RunClusterSimulation(router, tenants, config,
                                                /*scenario=*/{}, topology);
  DSSP_CHECK(result.ok());

  SweepCell cell;
  cell.tenants = num_tenants;
  cell.hosts = num_hosts;
  cell.pool_size = pool_size;
  cell.throughput = result->throughput_pages_per_s;
  cell.leases_queued = result->pool_leases_queued;
  cell.wait_s_total = result->pool_wait_s_total;
  cell.wait_s_max = result->pool_wait_s_max;
  cell.catalogs_loaded = result->catalogs_loaded;
  for (const dssp::sim::SimResult& tenant : result->tenants) {
    cell.failed_ops += tenant.failed_ops;
    cell.home_ops += tenant.home_queries + tenant.home_updates;
    cell.p90_s = std::max(cell.p90_s, tenant.p90_response_s);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = dssp::bench::FlagValue(argc, argv, "--json");
  const char* min_time_flag = dssp::bench::FlagValue(argc, argv, "--min-time");
  const char* scale_flag = dssp::bench::FlagValue(argc, argv, "--scale");
  const double min_time =
      min_time_flag != nullptr ? std::atof(min_time_flag) : 0.3;
  const double scale = scale_flag != nullptr ? std::atof(scale_flag) : 0.5;

  std::printf(
      "Ablation — home backend: statement cache + pooled hosts\n"
      "(scale %.2f, %.2fs per wall-clock measurement)\n\n",
      scale, min_time);

  // Part 1: statement cache.
  const CacheMeasurement cache = MeasureStatementCache(scale, min_time);
  std::printf(
      "statement cache (bookstore mix: %llu ops over %llu templates; "
      "%llu point / %llu scan)\n",
      static_cast<unsigned long long>(cache.ops),
      static_cast<unsigned long long>(cache.distinct_templates),
      static_cast<unsigned long long>(cache.point_ops),
      static_cast<unsigned long long>(cache.scan_ops));
  std::printf("  execution stage  %12s %12s %8s\n", "prepared q/s",
              "per-call q/s", "speedup");
  std::printf("  %-16s %12.0f %12.0f %7.1fx   <- gate (probe on %s)\n",
              "gate-point", cache.gate_prepared_qps, cache.gate_per_call_qps,
              cache.gate_speedup, cache.gate_table.c_str());
  std::printf("  %-16s %12.0f %12.0f %7.1fx\n", "mix: point",
              cache.point_prepared_qps, cache.point_per_call_qps,
              cache.point_speedup);
  std::printf("  %-16s %12.0f %12.0f %7.1fx\n", "mix: scan",
              cache.scan_prepared_qps, cache.scan_per_call_qps,
              cache.scan_speedup);
  std::printf("  end-to-end HandleQuery   %12s\n", "queries/s");
  std::printf("  %-24s %12.0f   (cache hits: %llu)\n", "cache on",
              cache.e2e_cached_qps,
              static_cast<unsigned long long>(cache.cache_hits));
  std::printf("  %-24s %12.0f   (per-call compiles: %llu)\n", "kill switch",
              cache.e2e_uncached_qps,
              static_cast<unsigned long long>(cache.unprepared_executions));
  std::printf("  program/interpreter split: %llu/%llu\n\n",
              static_cast<unsigned long long>(
                  cache.final_stats.program_queries),
              static_cast<unsigned long long>(
                  cache.final_stats.interpreter_fallback_queries));

  // Part 2: topology sweep.
  std::printf(
      "topology sweep (virtual time, home service inflated 10x)\n"
      "  %-8s %-6s %-6s %10s %8s %9s %8s %10s %7s\n",
      "tenants", "hosts", "pool", "pages/s", "p90 s", "home ops", "queued",
      "wait s", "failed");
  std::vector<SweepCell> cells;
  for (const int tenants : {1, 2, 4}) {
    for (const int hosts : {1, 2}) {
      if (hosts > tenants) continue;
      for (const int pool_size : {1, 2, 8}) {
        SweepCell cell = RunCell(tenants, hosts, pool_size, scale);
        std::printf("  %-8d %-6d %-6d %10.1f %8.3f %9llu %8llu %10.1f %7llu\n",
                    cell.tenants, cell.hosts, cell.pool_size, cell.throughput,
                    cell.p90_s,
                    static_cast<unsigned long long>(cell.home_ops),
                    static_cast<unsigned long long>(cell.leases_queued),
                    cell.wait_s_total,
                    static_cast<unsigned long long>(cell.failed_ops));
        cells.push_back(cell);
      }
    }
  }

  uint64_t total_failed = 0;
  const SweepCell* saturated = nullptr;
  for (const SweepCell& cell : cells) {
    total_failed += cell.failed_ops;
    if (cell.tenants == 4 && cell.hosts == 1 && cell.pool_size == 1) {
      saturated = &cell;
    }
  }
  const bool cache_gate_ok = cache.gate_speedup >= kCacheGate;
  const bool backpressure_gate_ok = total_failed == 0 &&
                                    saturated != nullptr &&
                                    saturated->leases_queued > 0;

  std::printf(
      "\nInterpretation: the statement cache moves QueryProgram::Compile\n"
      "off the per-query path — each connection compiles a template once\n"
      "and replays the program thereafter. The gate probe executes in\n"
      "O(1), so removing per-call compilation is the whole win and it\n"
      "carries the gate; the workload mix dilutes with each template's\n"
      "execution weight (scan-bound templates spend their time in the\n"
      "scan on both sides), as do the end-to-end rows, which add the\n"
      "decrypt/parse/serialize pipeline both paths share.\n"
      "The pool turns an undersized host into queueing delay (visible\n"
      "above as queued leases and wait seconds at pool=1) rather than\n"
      "failed operations: every cell, including the fully saturated one,\n"
      "completes with zero failures.\n\n");
  std::printf("gate: stmt cache probe >= %.1fx   %s (measured %.1fx)\n",
              kCacheGate, cache_gate_ok ? "PASS" : "FAIL",
              cache.gate_speedup);
  std::printf(
      "gate: saturation = backpressure  %s (failed ops %llu, saturated-cell "
      "queued leases %llu)\n",
      backpressure_gate_ok ? "PASS" : "FAIL",
      static_cast<unsigned long long>(total_failed),
      static_cast<unsigned long long>(
          saturated != nullptr ? saturated->leases_queued : 0));

  if (json_path != nullptr) {
    dssp::bench::JsonObject cache_doc;
    cache_doc.Set("gate_prepared_qps", cache.gate_prepared_qps);
    cache_doc.Set("gate_per_call_qps", cache.gate_per_call_qps);
    cache_doc.Set("gate_speedup", cache.gate_speedup);
    cache_doc.Set("gate_table", cache.gate_table);
    cache_doc.Set("point_prepared_qps", cache.point_prepared_qps);
    cache_doc.Set("point_per_call_qps", cache.point_per_call_qps);
    cache_doc.Set("point_speedup", cache.point_speedup);
    cache_doc.Set("point_ops", cache.point_ops);
    cache_doc.Set("scan_prepared_qps", cache.scan_prepared_qps);
    cache_doc.Set("scan_per_call_qps", cache.scan_per_call_qps);
    cache_doc.Set("scan_speedup", cache.scan_speedup);
    cache_doc.Set("scan_ops", cache.scan_ops);
    cache_doc.Set("e2e_cached_qps", cache.e2e_cached_qps);
    cache_doc.Set("e2e_uncached_qps", cache.e2e_uncached_qps);
    cache_doc.Set("ops", cache.ops);
    cache_doc.Set("distinct_templates", cache.distinct_templates);
    cache_doc.Set("cache_hits", cache.cache_hits);
    cache_doc.Set("unprepared_executions", cache.unprepared_executions);
    cache_doc.Set("program_queries", cache.final_stats.program_queries);
    cache_doc.Set("interpreter_fallback_queries",
                  cache.final_stats.interpreter_fallback_queries);

    std::vector<dssp::bench::JsonObject> rows;
    for (const SweepCell& cell : cells) {
      dssp::bench::JsonObject row;
      row.Set("tenants", cell.tenants);
      row.Set("hosts", cell.hosts);
      row.Set("pool_size", cell.pool_size);
      row.Set("throughput_pages_per_s", cell.throughput);
      row.Set("p90_s", cell.p90_s);
      row.Set("home_ops", cell.home_ops);
      row.Set("leases_queued", cell.leases_queued);
      row.Set("wait_s_total", cell.wait_s_total);
      row.Set("wait_s_max", cell.wait_s_max);
      row.Set("catalogs_loaded", cell.catalogs_loaded);
      row.Set("failed_ops", cell.failed_ops);
      rows.push_back(std::move(row));
    }

    dssp::bench::JsonObject doc;
    doc.Set("experiment", "home_backend");
    doc.Set("scale", scale);
    doc.Set("min_time_s", min_time);
    doc.Set("cache_gate", kCacheGate);
    doc.Set("cache_gate_pass", cache_gate_ok);
    doc.Set("backpressure_gate_pass", backpressure_gate_ok);
    doc.SetRaw("statement_cache", cache_doc.ToString());
    doc.SetRaw("sweep", dssp::bench::JsonArray(rows));
    dssp::bench::WriteJsonFile(json_path, doc);
  }
  return cache_gate_ok && backpressure_gate_ok ? 0 : 1;
}
