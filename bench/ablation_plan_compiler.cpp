// Ablation: ahead-of-time invalidation-plan compiler vs. legacy per-call
// re-derivation. For each application, replays a trace against a pool of
// cached query instances and runs every (update, cached entry) decision
// twice — once through MSIS re-deriving the Section 4 analysis per call,
// once through MSIS backed by the compiled InvalidationPlan — verifying the
// decisions are bit-identical and reporting solver invocations and decision
// throughput for both paths.

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "analysis/plan.h"
#include "bench/bench_util.h"
#include "invalidation/independence.h"
#include "invalidation/strategies.h"

namespace {

using dssp::analysis::ExposureLevel;
using dssp::analysis::InvalidationPlan;
using dssp::invalidation::CachedQueryView;
using dssp::invalidation::Decision;
using dssp::invalidation::StatementInspectionStrategy;
using dssp::invalidation::UpdateView;

using Clock = std::chrono::steady_clock;

struct Cached {
  size_t query_index;
  dssp::sql::Statement statement;
};

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

int main() {
  std::printf(
      "Ablation — ahead-of-time plan compiler vs. per-call re-derivation\n"
      "(MSIS decisions at stmt/stmt exposure; decisions are checked\n"
      " bit-identical between the two paths)\n\n");
  std::printf("%-11s %8s %9s %11s %11s %9s %10s %10s %8s\n", "Application",
              "pairs", "decisions", "solver-old", "solver-new", "replaced",
              "Mdec/s-old", "Mdec/s-new", "speedup");
  std::printf("%s\n", std::string(94, '-').c_str());

  bool all_replaced_90 = true;
  for (std::string_view name : dssp::workloads::kEvaluationApps) {
    auto system = dssp::bench::BuildSystem(std::string(name), 0.25, 3);
    auto& db = system->app->home().database();
    const auto& templates = system->app->templates();
    const auto& catalog = db.catalog();

    const auto compile_start = Clock::now();
    const InvalidationPlan plan = InvalidationPlan::Compile(templates, catalog);
    const double compile_s = Seconds(Clock::now() - compile_start);
    const InvalidationPlan::Summary summary = plan.Summarize();

    StatementInspectionStrategy legacy(catalog);
    StatementInspectionStrategy compiled(catalog,
                                         /*use_independence_solver=*/true,
                                         /*use_integrity_constraints=*/true,
                                         &plan);

    auto session = system->workload->NewSession(9);
    dssp::Rng rng(43);
    std::map<std::string, Cached> cached;
    uint64_t decisions = 0;
    uint64_t updates = 0;
    uint64_t legacy_solver = 0;
    uint64_t compiled_solver = 0;
    Clock::duration legacy_time{};
    Clock::duration compiled_time{};

    for (int page = 0; page < 300; ++page) {
      for (const dssp::sim::DbOp& op : session->NextPage(rng)) {
        if (!op.is_update) {
          const size_t index = templates.QueryIndex(op.template_id);
          auto bound = templates.queries()[index].Bind(op.params);
          const std::string key = dssp::sql::ToSql(bound);
          if (cached.size() < 120 || cached.count(key) != 0) {
            cached[key] = Cached{index, std::move(bound)};
          }
          continue;
        }
        const size_t u_index = templates.UpdateIndex(op.template_id);
        const auto& u_tmpl = templates.updates()[u_index];
        const dssp::sql::Statement u_stmt = u_tmpl.Bind(op.params);
        ++updates;
        UpdateView uv;
        uv.level = ExposureLevel::kStmt;
        uv.tmpl = &u_tmpl;
        uv.statement = &u_stmt;
        uv.template_index = u_index;

        // Legacy sweep: re-derives the template/statement analysis per call.
        uint64_t legacy_invalidations = 0;
        uint64_t before = dssp::invalidation::SolverInvocations();
        auto start = Clock::now();
        for (const auto& [key, entry] : cached) {
          CachedQueryView qv;
          qv.level = ExposureLevel::kStmt;
          qv.tmpl = &templates.queries()[entry.query_index];
          qv.statement = &entry.statement;
          // template_index deliberately left unset: forces the legacy path
          // even though `legacy` holds no plan anyway.
          if (legacy.Decide(uv, qv) == Decision::kInvalidate) {
            ++legacy_invalidations;
          }
        }
        legacy_time += Clock::now() - start;
        legacy_solver += dssp::invalidation::SolverInvocations() - before;

        // Compiled sweep: O(1) pair lookup + parameter program.
        uint64_t compiled_invalidations = 0;
        before = dssp::invalidation::SolverInvocations();
        start = Clock::now();
        for (const auto& [key, entry] : cached) {
          CachedQueryView qv;
          qv.level = ExposureLevel::kStmt;
          qv.tmpl = &templates.queries()[entry.query_index];
          qv.statement = &entry.statement;
          qv.template_index = entry.query_index;
          if (compiled.Decide(uv, qv) == Decision::kInvalidate) {
            ++compiled_invalidations;
          }
        }
        compiled_time += Clock::now() - start;
        compiled_solver += dssp::invalidation::SolverInvocations() - before;

        decisions += cached.size();
        DSSP_CHECK(legacy_invalidations == compiled_invalidations);
        DSSP_CHECK(db.ExecuteUpdate(u_stmt).ok());
      }
    }

    const double replaced =
        legacy_solver == 0
            ? 1.0
            : 1.0 - static_cast<double>(compiled_solver) /
                        static_cast<double>(legacy_solver);
    if (replaced < 0.9) all_replaced_90 = false;
    const double old_rate =
        static_cast<double>(decisions) / Seconds(legacy_time) / 1e6;
    const double new_rate =
        static_cast<double>(decisions) / Seconds(compiled_time) / 1e6;
    std::printf(
        "%-11s %8zu %9llu %11llu %11llu %8.1f%% %10.2f %10.2f %7.1fx\n",
        std::string(name).c_str(), summary.total(),
        static_cast<unsigned long long>(decisions),
        static_cast<unsigned long long>(legacy_solver),
        static_cast<unsigned long long>(compiled_solver), 100.0 * replaced,
        old_rate, new_rate, old_rate > 0 ? new_rate / old_rate : 0.0);
    std::printf(
        "            plan: %zu never / %zu always / %zu program / %zu view"
        " / %zu fallback; compiled in %.1f ms; %llu updates swept\n",
        summary.never_invalidate, summary.always_invalidate,
        summary.param_program, summary.view_test, summary.solver_fallback,
        compile_s * 1e3, static_cast<unsigned long long>(updates));
  }

  std::printf(
      "\nInterpretation: the compiler moves the Section 4 analysis out of\n"
      "the per-decision hot path. `solver-new` counts the general\n"
      "independence solves the compiled path still performs (only\n"
      "solver-fallback pairs, none on the paper workloads), so `replaced`\n"
      "is the fraction of ProvablyIndependent calls eliminated. Decision\n"
      "rates are single-threaded; per-node update throughput scales\n"
      "accordingly.\n");
  if (!all_replaced_90) {
    std::printf("\nWARNING: solver replacement below 90%% on some app.\n");
    return 1;
  }
  return 0;
}
