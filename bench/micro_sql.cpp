// Microbenchmarks for the SQL layer: tokenizer, parser, printer, binding.

#include <benchmark/benchmark.h>

#include "sql/parser.h"

namespace {

const char* kSimple = "SELECT qty FROM toys WHERE toy_id = ?";
const char* kComplex =
    "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE item.i_a_id = author.a_id AND i_subject = ? "
    "ORDER BY i_pub_date DESC, i_title LIMIT 50";

void BM_ParseSimple(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = dssp::sql::Parse(kSimple);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseSimple);

void BM_ParseComplex(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = dssp::sql::Parse(kComplex);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseComplex);

void BM_PrintComplex(benchmark::State& state) {
  const dssp::sql::Statement stmt = dssp::sql::ParseOrDie(kComplex);
  for (auto _ : state) {
    std::string sql = dssp::sql::ToSql(stmt);
    benchmark::DoNotOptimize(sql);
  }
}
BENCHMARK(BM_PrintComplex);

void BM_BindParameters(benchmark::State& state) {
  const dssp::sql::Statement stmt = dssp::sql::ParseOrDie(kComplex);
  const std::vector<dssp::sql::Value> params = {dssp::sql::Value("SCIFI")};
  for (auto _ : state) {
    dssp::sql::Statement bound = dssp::sql::BindParameters(stmt, params);
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_BindParameters);

}  // namespace

BENCHMARK_MAIN();
