// Consolidation experiment (the paper's economic premise, Section 1: "to be
// cost-effective, DSSPs will need to cache data from home servers of many
// applications"): how does one DSSP node behave as tenants are added?
// Each tenant brings its own users and home server; only the DSSP node's
// worker pool and cache store are shared.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

struct TenantHarness {
  TenantHarness(const std::string& name, dssp::service::DsspNode* node,
                uint64_t seed)
      : app(name, node, dssp::crypto::KeyRing::FromPassphrase("mt-" + name)) {
    workload = dssp::workloads::MakeApplication(name);
    DSSP_CHECK_OK(workload->Setup(app, dssp::bench::BenchScale(), seed));
    DSSP_CHECK_OK(app.Finalize());
    generator = workload->NewSession(seed + 1);
  }

  dssp::service::ScalableApp app;
  std::unique_ptr<dssp::workloads::Application> workload;
  std::unique_ptr<dssp::sim::SessionGenerator> generator;
};

}  // namespace

int main() {
  dssp::sim::SimConfig config = dssp::bench::BenchSimConfig();
  std::printf(
      "Multi-tenant consolidation — one DSSP node, growing tenant count\n"
      "(each tenant: one benchmark app with 150 users and its own home "
      "server; duration=%.0fs)\n\n",
      config.duration_s);
  std::printf("%8s | %-10s %10s %10s %10s\n", "tenants", "app", "p90 (s)",
              "hit rate", "pages");
  std::printf("%s\n", std::string(60, '-').c_str());

  const std::vector<std::string> roster = {"bookstore", "auction", "bboard",
                                           "toystore"};
  for (size_t count = 1; count <= roster.size(); ++count) {
    dssp::service::DsspNode node;
    std::vector<std::unique_ptr<TenantHarness>> tenants;
    std::vector<dssp::sim::Tenant> specs;
    for (size_t t = 0; t < count; ++t) {
      tenants.push_back(
          std::make_unique<TenantHarness>(roster[t], &node, 10 + t));
      specs.push_back(dssp::sim::Tenant{&tenants.back()->app,
                                        tenants.back()->generator.get(),
                                        150});
    }
    auto results = dssp::sim::RunMultiTenantSimulation(specs, config);
    DSSP_CHECK(results.ok());
    for (size_t t = 0; t < count; ++t) {
      std::printf("%8zu | %-10s %10.3f %10.3f %10zu\n",
                  t == 0 ? count : count, roster[t].c_str(),
                  (*results)[t].p90_response_s, (*results)[t].cache_hit_rate,
                  (*results)[t].pages_completed);
    }
    std::printf("%s\n", std::string(60, '-').c_str());
  }

  std::printf(
      "\nInterpretation: tenant response times barely move as co-tenants "
      "join — the\nbottleneck stays each application's own home server, so "
      "one provider node\nconsolidates many applications (the DSSP business "
      "case).\n");
  return 0;
}
