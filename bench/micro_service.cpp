// Microbenchmarks for the DSSP service path: cache hits, misses, and
// invalidation at the different exposure levels.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/micro_util.h"

namespace {

using dssp::analysis::ExposureLevel;
using dssp::bench::BuildSystem;
using dssp::sql::Value;

void RunQueryPath(benchmark::State& state, ExposureLevel level) {
  auto system = BuildSystem("bookstore", 0.5, 5);
  DSSP_CHECK_OK(system->app->SetExposure(dssp::bench::UniformExposure(
      *system->app, level, ExposureLevel::kStmt)));
  // Warm the entry, then measure the hit path.
  DSSP_CHECK(system->app->Query("Q2", {Value(17)}).ok());
  for (auto _ : state) {
    auto result = system->app->Query("Q2", {Value(17)});
    benchmark::DoNotOptimize(result);
  }
}

void BM_CacheHitView(benchmark::State& state) {
  RunQueryPath(state, ExposureLevel::kView);
}
BENCHMARK(BM_CacheHitView);

void BM_CacheHitTemplate(benchmark::State& state) {
  RunQueryPath(state, ExposureLevel::kTemplate);
}
BENCHMARK(BM_CacheHitTemplate);

void BM_CacheHitBlind(benchmark::State& state) {
  RunQueryPath(state, ExposureLevel::kBlind);
}
BENCHMARK(BM_CacheHitBlind);

void BM_CacheMissAndFill(benchmark::State& state) {
  auto system = BuildSystem("bookstore", 0.5, 5);
  int64_t i = 0;
  for (auto _ : state) {
    // A fresh key each iteration: full miss -> home -> store path.
    auto result =
        system->app->Query("Q2", {Value(1 + (i++ % 500))});
    benchmark::DoNotOptimize(result);
    if (i % 500 == 0) system->node.ClearCache("bookstore");
  }
}
BENCHMARK(BM_CacheMissAndFill);

void BM_UpdateWithInvalidation(benchmark::State& state) {
  auto system = BuildSystem("bookstore", 0.5, 5);
  // Populate a cache of assorted entries.
  for (int64_t i = 1; i <= 200; ++i) {
    DSSP_CHECK(system->app->Query("Q2", {Value(i)}).ok());
    DSSP_CHECK(system->app->Query("Q18", {Value(i)}).ok());
  }
  int64_t i = 0;
  for (auto _ : state) {
    // Stock updates invalidate the touched item's Q2/Q18 entries.
    auto effect =
        system->app->Update("U6", {Value(50), Value(1 + (i++ % 200))});
    benchmark::DoNotOptimize(effect);
  }
  state.counters["cache_size"] = static_cast<double>(
      system->node.CacheSize("bookstore"));
}
BENCHMARK(BM_UpdateWithInvalidation);

}  // namespace

int main(int argc, char** argv) {
  return dssp::bench::RunBenchmarkMain(argc, argv);
}
