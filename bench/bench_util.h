#ifndef DSSP_BENCH_BENCH_UTIL_H_
#define DSSP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "sim/search.h"
#include "sim/simulator.h"
#include "workloads/application.h"

namespace dssp::bench {

// ----- Command-line flags (shared across experiment binaries). -----

// Value of `--name <value>` (or `--name=<value>`), or nullptr when absent.
inline const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[i + 1];
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// ----- Machine-readable results (--json <path>). -----

// A flat JSON object with insertion-ordered fields. Experiments compose a
// document out of these and write BENCH_*.json files that dashboards and CI
// checks consume without scraping stdout.
class JsonObject {
 public:
  void Set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
  }
  void Set(const std::string& key, const char* value) {
    Set(key, std::string(value));
  }
  void Set(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    fields_.emplace_back(key, buf);
  }
  void Set(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Set(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  // Nested raw JSON (an already-rendered object or array).
  void SetRaw(const std::string& key, std::string json) {
    fields_.emplace_back(key, std::move(json));
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += Quote(fields_[i].first) + ":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

inline std::string JsonArray(const std::vector<JsonObject>& rows) {
  std::string out = "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ",";
    out += rows[i].ToString();
  }
  out += "]";
  return out;
}

// Writes `doc` to `path` (newline-terminated) and reports it on stdout, so
// the human transcript records where the machine copy went. DSSP_CHECKs on
// I/O failure: a benchmark whose results were lost should not pass.
inline void WriteJsonFile(const std::string& path, const JsonObject& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  DSSP_CHECK(f != nullptr);
  const std::string body = doc.ToString();
  DSSP_CHECK(std::fwrite(body.data(), 1, body.size(), f) == body.size());
  DSSP_CHECK(std::fputc('\n', f) != EOF);
  DSSP_CHECK(std::fclose(f) == 0);
  std::printf("[json] wrote %s\n", path.c_str());
}

// The standard latency/throughput fields every experiment's JSON rows share.
inline void FillResultFields(const sim::SimResult& result, double duration_s,
                             double warmup_s, JsonObject* row) {
  const double measured = duration_s - warmup_s;
  row->Set("clients", result.num_clients);
  row->Set("pages", static_cast<uint64_t>(result.pages_completed));
  row->Set("throughput_pages_per_s",
           measured <= 0 ? 0.0
                         : static_cast<double>(result.pages_completed) /
                               duration_s);
  row->Set("mean_s", result.mean_response_s);
  row->Set("p50_s", result.p50_response_s);
  row->Set("p90_s", result.p90_response_s);
  row->Set("p99_s", result.p99_response_s);
  row->Set("hit_rate", result.cache_hit_rate);
  row->Set("failed_ops", result.failed_ops);
}

// A freshly built application system: shared DSSP node, home server with
// populated master database, and the workload definition.
struct System {
  service::DsspNode node;
  std::unique_ptr<service::ScalableApp> app;
  std::unique_ptr<workloads::Application> workload;
};

inline std::unique_ptr<System> BuildSystem(const std::string& name,
                                           double scale, uint64_t seed) {
  auto system = std::make_unique<System>();
  system->app = std::make_unique<service::ScalableApp>(
      name, &system->node,
      crypto::KeyRing::FromPassphrase("bench-" + name));
  system->workload = workloads::MakeApplication(name);
  DSSP_CHECK_OK(system->workload->Setup(*system->app, scale, seed));
  DSSP_CHECK_OK(system->app->Finalize());
  return system;
}

// Experiment knobs, overridable from the environment:
//   DSSP_BENCH_DURATION  virtual seconds per simulation run (default 240;
//                        the paper uses 600 — set it for full fidelity)
//   DSSP_BENCH_SCALE     database scale factor (default 1.0)
//   DSSP_BENCH_MAX_USERS scalability search ceiling (default 6000)
inline double BenchDuration() {
  const char* env = std::getenv("DSSP_BENCH_DURATION");
  return env != nullptr ? std::atof(env) : 240.0;
}

inline double BenchScale() {
  const char* env = std::getenv("DSSP_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 1.0;
}

inline int BenchMaxUsers() {
  const char* env = std::getenv("DSSP_BENCH_MAX_USERS");
  return env != nullptr ? std::atoi(env) : 6000;
}

inline sim::SimConfig BenchSimConfig() {
  sim::SimConfig config;
  config.duration_s = BenchDuration();
  // A third of the run warms the cold cache before measurement starts
  // (the paper's 600 s runs amortize this instead).
  config.warmup_s = config.duration_s / 3.0;
  return config;
}

// Measures the scalability (max users with p90 <= 2 s) of `name` under the
// given exposure-assignment factory. Each probe rebuilds the system from
// scratch and starts from a cold cache, as in the paper's methodology.
using ExposureFactory =
    std::function<analysis::ExposureAssignment(const service::ScalableApp&)>;

inline StatusOr<sim::ScalabilityResult> MeasureScalability(
    const std::string& name, const ExposureFactory& exposure_factory,
    const sim::SimConfig& config) {
  const sim::ProbeFn probe =
      [&](int users) -> StatusOr<sim::SimResult> {
    std::unique_ptr<System> system = BuildSystem(name, BenchScale(), 17);
    DSSP_RETURN_IF_ERROR(
        system->app->SetExposure(exposure_factory(*system->app)));
    auto generator = system->workload->NewSession(23);
    return sim::RunSimulation(*system->app, *generator, users, config);
  };
  const int tolerance = std::max(20, BenchMaxUsers() / 80);
  return sim::FindMaxUsers(probe, config, /*min_users=*/10, BenchMaxUsers(),
                           tolerance);
}

// Uniform exposure assignment for the Figure 8 strategy comparison.
inline analysis::ExposureAssignment UniformExposure(
    const service::ScalableApp& app, analysis::ExposureLevel query_level,
    analysis::ExposureLevel update_level) {
  analysis::ExposureAssignment exposure =
      analysis::ExposureAssignment::FullExposure(
          app.templates().num_queries(), app.templates().num_updates());
  for (auto& level : exposure.query_levels) level = query_level;
  for (auto& level : exposure.update_levels) level = update_level;
  return exposure;
}

}  // namespace dssp::bench

#endif  // DSSP_BENCH_BENCH_UTIL_H_
