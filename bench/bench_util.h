#ifndef DSSP_BENCH_BENCH_UTIL_H_
#define DSSP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "sim/search.h"
#include "sim/simulator.h"
#include "workloads/application.h"

namespace dssp::bench {

// A freshly built application system: shared DSSP node, home server with
// populated master database, and the workload definition.
struct System {
  service::DsspNode node;
  std::unique_ptr<service::ScalableApp> app;
  std::unique_ptr<workloads::Application> workload;
};

inline std::unique_ptr<System> BuildSystem(const std::string& name,
                                           double scale, uint64_t seed) {
  auto system = std::make_unique<System>();
  system->app = std::make_unique<service::ScalableApp>(
      name, &system->node,
      crypto::KeyRing::FromPassphrase("bench-" + name));
  system->workload = workloads::MakeApplication(name);
  DSSP_CHECK_OK(system->workload->Setup(*system->app, scale, seed));
  DSSP_CHECK_OK(system->app->Finalize());
  return system;
}

// Experiment knobs, overridable from the environment:
//   DSSP_BENCH_DURATION  virtual seconds per simulation run (default 240;
//                        the paper uses 600 — set it for full fidelity)
//   DSSP_BENCH_SCALE     database scale factor (default 1.0)
//   DSSP_BENCH_MAX_USERS scalability search ceiling (default 6000)
inline double BenchDuration() {
  const char* env = std::getenv("DSSP_BENCH_DURATION");
  return env != nullptr ? std::atof(env) : 240.0;
}

inline double BenchScale() {
  const char* env = std::getenv("DSSP_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 1.0;
}

inline int BenchMaxUsers() {
  const char* env = std::getenv("DSSP_BENCH_MAX_USERS");
  return env != nullptr ? std::atoi(env) : 6000;
}

inline sim::SimConfig BenchSimConfig() {
  sim::SimConfig config;
  config.duration_s = BenchDuration();
  // A third of the run warms the cold cache before measurement starts
  // (the paper's 600 s runs amortize this instead).
  config.warmup_s = config.duration_s / 3.0;
  return config;
}

// Measures the scalability (max users with p90 <= 2 s) of `name` under the
// given exposure-assignment factory. Each probe rebuilds the system from
// scratch and starts from a cold cache, as in the paper's methodology.
using ExposureFactory =
    std::function<analysis::ExposureAssignment(const service::ScalableApp&)>;

inline StatusOr<sim::ScalabilityResult> MeasureScalability(
    const std::string& name, const ExposureFactory& exposure_factory,
    const sim::SimConfig& config) {
  const sim::ProbeFn probe =
      [&](int users) -> StatusOr<sim::SimResult> {
    std::unique_ptr<System> system = BuildSystem(name, BenchScale(), 17);
    DSSP_RETURN_IF_ERROR(
        system->app->SetExposure(exposure_factory(*system->app)));
    auto generator = system->workload->NewSession(23);
    return sim::RunSimulation(*system->app, *generator, users, config);
  };
  const int tolerance = std::max(20, BenchMaxUsers() / 80);
  return sim::FindMaxUsers(probe, config, /*min_users=*/10, BenchMaxUsers(),
                           tolerance);
}

// Uniform exposure assignment for the Figure 8 strategy comparison.
inline analysis::ExposureAssignment UniformExposure(
    const service::ScalableApp& app, analysis::ExposureLevel query_level,
    analysis::ExposureLevel update_level) {
  analysis::ExposureAssignment exposure =
      analysis::ExposureAssignment::FullExposure(
          app.templates().num_queries(), app.templates().num_updates());
  for (auto& level : exposure.query_levels) level = query_level;
  for (auto& level : exposure.update_levels) level = update_level;
  return exposure;
}

}  // namespace dssp::bench

#endif  // DSSP_BENCH_BENCH_UTIL_H_
