// Real-thread throughput of the sharded DsspNode under a mixed
// lookup/store/update workload over the toystore templates, 1–16 threads.
// The node is the only thread-safe surface of the stack (home servers and
// ciphers are per-tenant, client-side state), so the benchmark drives it
// directly with pre-built exposure-gated entries and update notices.
//
// The headline number: BM_NodeMixedWorkload items/s should scale >= 2x from
// 1 to 8 threads — lock-striped shards plus relaxed atomic stats keep
// lookups on different shards contention-free.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dssp/cache.h"
#include "dssp/node.h"

namespace {

using dssp::Rng;
using dssp::analysis::ExposureLevel;
using dssp::service::CacheEntry;
using dssp::service::DsspNode;
using dssp::service::UpdateNotice;

constexpr int kKeySpace = 4096;
constexpr char kApp[] = "toystore";

struct MtSystem {
  std::unique_ptr<dssp::bench::System> system;  // Owns catalog + templates.
  std::vector<UpdateNotice> notices;
};

CacheEntry TemplateEntry(int key, size_t template_index) {
  CacheEntry entry;
  entry.key = "t:" + std::to_string(key);
  entry.level = ExposureLevel::kTemplate;
  entry.template_index = template_index;
  entry.blob = "serialized-result-" + std::to_string(key);
  return entry;
}

MtSystem& System() {
  static MtSystem* mt = [] {
    auto* out = new MtSystem;
    out->system = dssp::bench::BuildSystem(kApp, /*scale=*/0.25, /*seed=*/5);
    const auto& templates = out->system->app->templates();
    for (size_t i = 0; i < templates.num_updates(); ++i) {
      UpdateNotice notice;
      notice.level = ExposureLevel::kTemplate;
      notice.template_index = i;
      out->notices.push_back(std::move(notice));
    }
    return out;
  }();
  return *mt;
}

void Prefill(DsspNode& node) {
  node.ClearCache(kApp);
  for (int k = 0; k < kKeySpace; ++k) {
    node.Store(kApp, TemplateEntry(k, k % 3));
  }
}

// Mixed workload: 90% lookups, 8% stores, 2% exposure-gated update notices
// (each notice drains matching template groups shard by shard).
void BM_NodeMixedWorkload(benchmark::State& state) {
  MtSystem& mt = System();
  DsspNode& node = mt.system->node;
  if (state.thread_index() == 0) Prefill(node);
  Rng rng(1234 + state.thread_index() * 7919);
  for (auto _ : state) {
    const int64_t op = rng.NextInt(0, 99);
    const int key = static_cast<int>(rng.NextInt(0, kKeySpace - 1));
    if (op < 90) {
      benchmark::DoNotOptimize(
          node.Lookup(kApp, "t:" + std::to_string(key)));
    } else if (op < 98) {
      node.Store(kApp, TemplateEntry(key, key % 3));
    } else {
      benchmark::DoNotOptimize(node.OnUpdate(
          kApp, mt.notices[key % mt.notices.size()]));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeMixedWorkload)->ThreadRange(1, 16)->UseRealTime();

// Lookup-only scaling: the pure read path (shard lock + LRU touch + entry
// copy), the common case for a read-mostly tenant.
void BM_NodeLookupOnly(benchmark::State& state) {
  MtSystem& mt = System();
  DsspNode& node = mt.system->node;
  if (state.thread_index() == 0) Prefill(node);
  Rng rng(99 + state.thread_index() * 131);
  for (auto _ : state) {
    const int key = static_cast<int>(rng.NextInt(0, kKeySpace - 1));
    benchmark::DoNotOptimize(
        node.Lookup(kApp, "t:" + std::to_string(key)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeLookupOnly)->ThreadRange(1, 16)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
