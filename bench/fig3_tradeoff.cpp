// Reproduces Figure 3: the security-scalability tradeoff for the TPC-W
// bookstore. The x-axis counts query templates whose results are encrypted
// (level below `view`); the y-axis is scalability (max users with p90 under
// two seconds).
//
// Points, mirroring the paper's labels:
//   - "no encryption":   everything fully exposed (MVIS everywhere);
//   - naive sweep:       encrypting k query templates in id order,
//                        ignoring the analysis (the downward curve);
//   - "our approach":    the scalability-conscious methodology outcome —
//                        many templates encrypted, scalability preserved;
//   - "full encryption": everything blind (MBS).

#include <cstdio>
#include <vector>

#include "analysis/methodology.h"
#include "bench/bench_util.h"
#include "sim/trace.h"

namespace {

using dssp::analysis::ExposureAssignment;
using dssp::analysis::ExposureLevel;

size_t EncryptedResultCount(const ExposureAssignment& exposure) {
  size_t count = 0;
  for (ExposureLevel level : exposure.query_levels) {
    if (level != ExposureLevel::kView) ++count;
  }
  return count;
}

}  // namespace

int main() {
  const dssp::sim::SimConfig config = dssp::bench::BenchSimConfig();
  std::printf(
      "Figure 3 — security-scalability tradeoff (bookstore; duration=%.0fs, "
      "scale=%.2f)\n\n",
      config.duration_s, dssp::bench::BenchScale());

  // Compute the methodology outcome once (static analysis is deterministic).
  ExposureAssignment step1_baseline;
  ExposureAssignment our_approach;
  {
    auto system = dssp::bench::BuildSystem("bookstore",
                                           dssp::bench::BenchScale(), 17);
    const auto& catalog = system->app->home().database().catalog();
    const dssp::analysis::SecurityReport report =
        dssp::analysis::RunMethodology(
            system->app->templates(), catalog,
            system->workload->CompulsoryEncryption(catalog));
    step1_baseline = report.initial;
    our_approach = report.final;
  }

  struct Point {
    std::string label;
    dssp::bench::ExposureFactory factory;
  };
  std::vector<Point> points;

  points.push_back(
      {"no encryption (0 templates)",
       [](const dssp::service::ScalableApp& app) {
         return dssp::bench::UniformExposure(app, ExposureLevel::kView,
                                             ExposureLevel::kStmt);
       }});

  // The naive downward curve: encrypt the first k query templates (results
  // AND statements hidden -> those templates run blind) without consulting
  // the analysis.
  for (size_t k : {7u, 14u, 21u}) {
    points.push_back(
        {"naive: " + std::to_string(k) + " templates blind",
         [k](const dssp::service::ScalableApp& app) {
           ExposureAssignment exposure = dssp::bench::UniformExposure(
               app, ExposureLevel::kView, ExposureLevel::kStmt);
           for (size_t j = 0; j < k && j < exposure.query_levels.size();
                ++j) {
             exposure.query_levels[j] = ExposureLevel::kBlind;
           }
           return exposure;
         }});
  }

  points.push_back({"our approach",
                    [&](const dssp::service::ScalableApp&) {
                      return our_approach;
                    }});

  points.push_back(
      {"full encryption (all blind)",
       [](const dssp::service::ScalableApp& app) {
         return dssp::bench::UniformExposure(app, ExposureLevel::kBlind,
                                             ExposureLevel::kBlind);
       }});

  std::printf("%-36s %28s %12s\n", "configuration",
              "query templates encrypted", "max users");
  std::printf("%s\n", std::string(80, '-').c_str());
  for (const Point& point : points) {
    // Report the encrypted-template count of the configuration.
    auto probe_system = dssp::bench::BuildSystem(
        "bookstore", dssp::bench::BenchScale(), 17);
    const size_t encrypted =
        EncryptedResultCount(point.factory(*probe_system->app));
    probe_system.reset();

    auto result =
        dssp::bench::MeasureScalability("bookstore", point.factory, config);
    DSSP_CHECK(result.ok());
    std::printf("%-36s %28zu %12d\n", point.label.c_str(), encrypted,
                result->max_users);
    std::fflush(stdout);
  }

  // Head-to-head confirmation (the scalability search quantizes to its
  // tolerance, so equal configurations can print slightly different
  // max-user values, and simulated timing feedback perturbs workload
  // randomness): replay the IDENTICAL operation trace under both
  // configurations and compare cache behaviour directly. "No scalability
  // impact" means equal hits and equal invalidations on the same trace.
  {
    auto replay = [&](const dssp::bench::ExposureFactory& factory,
                      const std::vector<dssp::sim::DbOp>& trace) {
      auto system = dssp::bench::BuildSystem("bookstore",
                                             dssp::bench::BenchScale(), 17);
      DSSP_CHECK_OK(system->app->SetExposure(factory(*system->app)));
      auto stats = dssp::sim::ReplayTrace(*system->app, trace);
      DSSP_CHECK(stats.ok());
      return *stats;
    };
    auto recorder = dssp::bench::BuildSystem("bookstore",
                                             dssp::bench::BenchScale(), 17);
    auto generator = recorder->workload->NewSession(23);
    dssp::Rng rng(29);
    const std::vector<dssp::sim::DbOp> trace =
        dssp::sim::RecordPages(*generator, rng, 3000);
    recorder.reset();

    const dssp::sim::ReplayStats exposed =
        replay(points.front().factory, trace);
    const dssp::sim::ReplayStats step1 = replay(
        [&](const dssp::service::ScalableApp&) { return step1_baseline; },
        trace);
    const dssp::sim::ReplayStats ours = replay(
        [&](const dssp::service::ScalableApp&) { return our_approach; },
        trace);
    std::printf(
        "\nSame-trace head-to-head (%zu ops):\n"
        "  no encryption      hit_rate=%.4f invalidated=%zu\n"
        "  Step 1 (law only)  hit_rate=%.4f invalidated=%zu\n"
        "  our approach       hit_rate=%.4f invalidated=%zu   "
        "(Step 2 is free: identical to Step 1)\n",
        trace.size(), exposed.hit_rate(), exposed.entries_invalidated,
        step1.hit_rate(), step1.entries_invalidated, ours.hit_rate(),
        ours.entries_invalidated);
  }

  std::printf(
      "\nPaper shape check: 'our approach' encrypts most query templates' "
      "results\nwhile matching the no-encryption scalability; naive "
      "encryption decays toward\nthe full-encryption floor.\n");
  return 0;
}
