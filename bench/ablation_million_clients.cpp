// Million-client event-driven simulation + invalidation-batching ablation.
//
// Part 1 — client scale. The epoch-based EventExecutor multiplexes the
// closed-loop client population over a fixed thread set, so the simulator's
// footprint is one SimEvent per in-flight client instead of one thread (or
// one heap node churned per push) per client. This run drives the default
// 10^6 bookstore clients against a 4-node cluster and fails (DSSP_CHECK)
// unless the run completes with the p90 actually evaluated over measured
// pages — the ISSUE's "bounded wall-clock, p90 evaluated" gate. The CI
// release lane smoke-runs it at --clients 10000.
//
// Part 2 — bus batching. A standalone InvalidationBus fan-out under an
// update storm, measured against a wire whose dominant cost is per-FRAME
// (seal/unseal, retry bookkeeping, one WAN round trip) with a small
// per-notice tail. At an equal staleness bound (bus_lag, which counts
// notices under both framings), the batched bus coalesces each drain into
// ceil(lag/max_batch) frames where the unbatched bus pays one frame per
// notice. The gate: batched sustained update rate must be >= 10x the
// unbatched rate at equal bus_lag, or the process exits non-zero.
//
// Flags:
//   --clients N   closed-loop client count for part 1 (default 1000000)
//   --json <path> write both parts as machine-readable JSON

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/bus.h"
#include "cluster/router.h"
#include "dssp/node.h"
#include "sim/cluster_sim.h"

namespace {

using dssp::cluster::BusOptions;
using dssp::cluster::ClusterOptions;
using dssp::cluster::ClusterRouter;
using dssp::cluster::InvalidationBus;
using dssp::cluster::NodeChannel;

constexpr const char* kApp = "bookstore";

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ----- Part 1: the million-client run. -----

struct ScaleOutcome {
  dssp::sim::ClusterSimResult result;
  int clients = 0;
  double wall_s = 0;
};

ScaleOutcome RunClientScale(int clients) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.replication = 2;
  auto router = std::make_unique<ClusterRouter>(options);
  auto app = std::make_unique<dssp::service::ScalableApp>(
      kApp, router.get(),
      dssp::crypto::KeyRing::FromPassphrase("bench-million"));
  auto workload = dssp::workloads::MakeApplication(kApp);
  DSSP_CHECK_OK(workload->Setup(*app, /*scale=*/0.25, /*seed=*/0xC11E));
  DSSP_CHECK_OK(app->Finalize());
  auto generator = workload->NewSession(23);

  // A short virtual window: the point is population size, not run length.
  // Poisson arrivals spread the whole population over ~one think time, so
  // every client has fired by mid-run; capacity scales with the population
  // so the queues model contention without melting down.
  dssp::sim::SimConfig config;
  config.duration_s = 10.0;
  config.warmup_s = 3.0;
  config.think_time_mean_s = 7.0;
  config.exponential_arrivals = true;
  config.dssp_workers = std::max(8, clients / 2000);
  config.dssp_lookup_s = 0.0002;
  config.home_workers = std::max(16, clients / 500);
  config.home_query_base_s = 0.0005;
  config.home_query_per_row_s = 0.0;
  config.home_update_base_s = 0.0005;
  config.seed = 97;

  const auto start = std::chrono::steady_clock::now();
  auto result = dssp::sim::RunClusterSimulation(
      *router,
      {dssp::sim::Tenant{app.get(), generator.get(), clients}}, config);
  DSSP_CHECK(result.ok());

  ScaleOutcome outcome;
  outcome.result = std::move(*result);
  outcome.clients = clients;
  outcome.wall_s = WallSeconds(start);

  // The acceptance gate: the run finished and the p90 was evaluated over
  // real measured pages (an empty measurement window would report 0.0 and
  // "pass" any latency bar vacuously).
  DSSP_CHECK(outcome.result.pages_measured > 0);
  DSSP_CHECK(outcome.result.tenants[0].p90_response_s > 0.0);
  return outcome;
}

// ----- Part 2: batched vs unbatched fan-out under an update storm. -----

// Wire decorator with the ablation's cost model: every frame pays a fixed
// per-call price (seal/unseal, retry bookkeeping, one WAN round trip) plus
// a small per-notice tail for the bytes themselves. Deterministic, so the
// measured rates are exact, not sampled.
class MeteredChannel : public dssp::service::Channel {
 public:
  static constexpr double kPerCallS = 0.010;     // One WAN round trip.
  static constexpr double kPerNoticeS = 0.0001;  // Serialized bytes.

  explicit MeteredChannel(dssp::service::Channel* inner) : inner_(inner) {}

  dssp::service::ChannelOutcome RoundTrip(std::string_view frame) override {
    ++calls_;
    return inner_->RoundTrip(frame);
  }

  uint64_t calls() const { return calls_; }
  double SimulatedSeconds(uint64_t notices) const {
    return static_cast<double>(calls_) * kPerCallS +
           static_cast<double>(notices) * kPerNoticeS;
  }

 private:
  dssp::service::Channel* inner_;
  uint64_t calls_ = 0;
};

struct StormOutcome {
  uint64_t notices = 0;
  uint64_t wire_calls = 0;
  uint64_t batches_sent = 0;
  double simulated_s = 0;
  double rate_per_s = 0;
  double wall_s = 0;
};

StormOutcome RunUpdateStorm(size_t max_batch, size_t bus_lag,
                            uint64_t notices, int members) {
  BusOptions options;
  options.bus_lag = bus_lag;
  options.max_batch = max_batch;
  InvalidationBus bus(options);

  std::vector<std::unique_ptr<dssp::service::DsspNode>> nodes;
  std::vector<std::unique_ptr<NodeChannel>> endpoints;
  std::vector<std::unique_ptr<MeteredChannel>> wires;
  for (int i = 0; i < members; ++i) {
    nodes.push_back(std::make_unique<dssp::service::DsspNode>());
    endpoints.push_back(std::make_unique<NodeChannel>(*nodes.back()));
    wires.push_back(std::make_unique<MeteredChannel>(endpoints.back().get()));
    bus.AddMember(i, wires.back().get());
  }

  // The storm: back-to-back exposure-gated notices, the bus draining each
  // member whenever its backlog exceeds the (equal) staleness bound.
  dssp::service::UpdateNotice notice;  // Blind: the cheapest legal notice.
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < notices; ++i) bus.Publish(kApp, notice);
  for (int i = 0; i < members; ++i) DSSP_CHECK(bus.Flush(i).ok());

  StormOutcome outcome;
  outcome.wall_s = WallSeconds(start);
  const dssp::cluster::BusStats stats = bus.stats();
  DSSP_CHECK(stats.delivered_notices ==
             notices * static_cast<uint64_t>(members));
  DSSP_CHECK(stats.dropped_frames == 0 && stats.unreachable_failures == 0);
  outcome.notices = stats.delivered_notices;
  outcome.batches_sent = stats.batches_sent;
  for (const auto& wire : wires) outcome.wire_calls += wire->calls();
  for (const auto& wire : wires) {
    outcome.simulated_s += wire->SimulatedSeconds(notices);
  }
  outcome.rate_per_s =
      static_cast<double>(outcome.notices) / outcome.simulated_s;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const char* clients_flag = dssp::bench::FlagValue(argc, argv, "--clients");
  const char* json_path = dssp::bench::FlagValue(argc, argv, "--json");
  const int clients = clients_flag != nullptr ? std::atoi(clients_flag)
                                              : 1000000;
  DSSP_CHECK(clients > 0);

  // ----- Part 1. -----
  std::printf("Million-client run — %s, %d clients, 4 nodes, %.0fs virtual\n",
              kApp, clients, 10.0);
  const ScaleOutcome scale = RunClientScale(clients);
  const dssp::sim::SimResult& tenant = scale.result.tenants[0];
  const double events_per_s =
      scale.wall_s > 0
          ? static_cast<double>(scale.result.events_executed) / scale.wall_s
          : 0.0;
  std::printf(
      "  completed in %.1fs wall: %llu events (%.0f events/s wall, "
      "%llu epochs)\n",
      scale.wall_s,
      static_cast<unsigned long long>(scale.result.events_executed),
      events_per_s,
      static_cast<unsigned long long>(scale.result.executor_epochs));
  std::printf(
      "  pages measured=%zu throughput=%.1f pages/s p90=%.3fs "
      "hit_rate=%.3f failed=%llu\n\n",
      scale.result.pages_measured, scale.result.throughput_pages_per_s,
      tenant.p90_response_s, tenant.cache_hit_rate,
      static_cast<unsigned long long>(tenant.failed_ops));

  // ----- Part 2. -----
  constexpr size_t kLag = 64;
  constexpr uint64_t kNotices = 4096;
  constexpr int kMembers = 4;
  std::printf(
      "Batching ablation — %llu notices x %d members, bus_lag=%zu "
      "(equal both modes)\n",
      static_cast<unsigned long long>(kNotices), kMembers, kLag);
  const StormOutcome unbatched = RunUpdateStorm(/*max_batch=*/1, kLag,
                                                kNotices, kMembers);
  const StormOutcome batched = RunUpdateStorm(/*max_batch=*/kLag, kLag,
                                              kNotices, kMembers);
  const double speedup = batched.rate_per_s / unbatched.rate_per_s;
  std::printf("  %-10s %12s %12s %14s %14s\n", "mode", "frames", "batches",
              "sim wire (s)", "updates/s");
  std::printf("  %-10s %12llu %12llu %14.3f %14.0f\n", "unbatched",
              static_cast<unsigned long long>(unbatched.wire_calls),
              static_cast<unsigned long long>(unbatched.batches_sent),
              unbatched.simulated_s, unbatched.rate_per_s);
  std::printf("  %-10s %12llu %12llu %14.3f %14.0f\n", "batched",
              static_cast<unsigned long long>(batched.wire_calls),
              static_cast<unsigned long long>(batched.batches_sent),
              batched.simulated_s, batched.rate_per_s);
  std::printf(
      "  batching speedup: %.1fx sustained update rate "
      "(wall: %.3fs vs %.3fs)\n",
      speedup, unbatched.wall_s, batched.wall_s);

  // The acceptance gate: at an equal staleness bound, coalescing must buy
  // at least an order of magnitude of sustained update rate.
  DSSP_CHECK(speedup >= 10.0);

  if (json_path != nullptr) {
    dssp::bench::JsonObject doc;
    doc.Set("experiment", "million_clients");
    doc.Set("clients", scale.clients);
    doc.Set("nodes", 4);
    doc.Set("wall_s", scale.wall_s);
    doc.Set("events_executed", scale.result.events_executed);
    doc.Set("events_per_s_wall", events_per_s);
    doc.Set("executor_epochs", scale.result.executor_epochs);
    doc.Set("pages_measured",
            static_cast<uint64_t>(scale.result.pages_measured));
    doc.Set("throughput_pages_per_s", scale.result.throughput_pages_per_s);
    doc.Set("p90_s", tenant.p90_response_s);
    doc.Set("hit_rate", tenant.cache_hit_rate);
    doc.Set("failed_ops", tenant.failed_ops);
    dssp::bench::JsonObject storm;
    storm.Set("bus_lag", static_cast<uint64_t>(kLag));
    storm.Set("notices", kNotices * static_cast<uint64_t>(kMembers));
    storm.Set("unbatched_frames", unbatched.wire_calls);
    storm.Set("batched_frames", batched.wire_calls);
    storm.Set("batches_sent", batched.batches_sent);
    storm.Set("unbatched_updates_per_s", unbatched.rate_per_s);
    storm.Set("batched_updates_per_s", batched.rate_per_s);
    storm.Set("batching_speedup", speedup);
    doc.SetRaw("batching", storm.ToString());
    dssp::bench::WriteJsonFile(json_path, doc);
  }
  return 0;
}
