// Ablation: predicate-indexed view registry vs. full group scan.
//
// Fills one DSSP node with N statement-exposed cached views of a point
// query template and measures the per-update invalidation cost of a
// statement-exposed update notice, with the predicate index enabled
// (OnUpdate probes only candidate buckets) and disabled (OnUpdate walks
// every entry of every surviving group — the pre-index behavior). Sweeps
// N = 10^3 .. 10^6 cached views; both paths are checked to invalidate the
// same entries before timing.
//
// Flags:
//   --max-views N   cap the sweep (default 1000000; CI smoke uses 10000)
//   --updates K     timed updates per point (default 32)
//   --json <path>   write the sweep as machine-readable JSON
//
// Exits non-zero when the sweep violates the acceptance gates: >= 10x
// speedup at the largest point, and sublinear growth of the probe path
// (probe cost may grow at most ~sqrt of the view-count ratio).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/schema.h"
#include "dssp/node.h"
#include "templates/template_set.h"

namespace {

using Clock = std::chrono::steady_clock;
using dssp::analysis::ExposureLevel;
using dssp::service::CacheEntry;
using dssp::service::DsspNode;
using dssp::service::UpdateNotice;
using dssp::sql::Value;

constexpr const char* kApp = "views";

double MicrosPer(Clock::duration d, int updates) {
  return std::chrono::duration<double, std::micro>(d).count() / updates;
}

CacheEntry MakeEntry(const dssp::templates::TemplateSet& templates,
                     int64_t id) {
  CacheEntry entry;
  entry.key = "k" + std::to_string(id);
  entry.level = ExposureLevel::kStmt;
  entry.template_index = 0;
  entry.statement = templates.queries()[0].Bind({Value(id)});
  entry.blob = "v" + std::to_string(id);
  return entry;
}

UpdateNotice MakeNotice(const dssp::templates::TemplateSet& templates,
                        int64_t id) {
  UpdateNotice notice;
  notice.level = ExposureLevel::kStmt;
  notice.template_index = 0;
  notice.statement = templates.updates()[0].Bind({Value(int64_t{0}), Value(id)});
  return notice;
}

struct SweepPoint {
  int64_t views = 0;
  double scan_us = 0;    // Per-update cost, index disabled.
  double probe_us = 0;   // Per-update cost, index enabled.
  double speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* max_flag = dssp::bench::FlagValue(argc, argv, "--max-views");
  const char* updates_flag = dssp::bench::FlagValue(argc, argv, "--updates");
  const char* json_path = dssp::bench::FlagValue(argc, argv, "--json");
  const int64_t max_views =
      max_flag != nullptr ? std::atoll(max_flag) : 1000000;
  const int timed_updates =
      updates_flag != nullptr ? std::atoi(updates_flag) : 32;
  DSSP_CHECK(max_views >= 1000 && timed_updates > 0);

  dssp::catalog::Catalog catalog;
  DSSP_CHECK(catalog
                 .AddTable(dssp::catalog::TableSchema(
                     "t",
                     {{"id", dssp::catalog::ColumnType::kInt64},
                      {"v", dssp::catalog::ColumnType::kInt64}},
                     {"id"}))
                 .ok());
  dssp::templates::TemplateSet templates;
  DSSP_CHECK(
      templates.AddQuerySql("SELECT v FROM t WHERE id = ?", catalog).ok());
  DSSP_CHECK(
      templates.AddUpdateSql("UPDATE t SET v = ? WHERE id = ?", catalog)
          .ok());

  std::printf(
      "Ablation — predicate-indexed view registry vs. full group scan\n"
      "(statement-exposed point query; per-update invalidation cost over\n"
      " N cached views; both paths verified to invalidate identically)\n\n");
  std::printf("%10s %14s %14s %9s\n", "views", "scan-us/upd",
              "probe-us/upd", "speedup");
  std::printf("%s\n", std::string(50, '-').c_str());

  std::vector<SweepPoint> points;
  for (int64_t views = 1000; views <= max_views; views *= 10) {
    DsspNode node;
    DSSP_CHECK(node.RegisterApp(kApp, &catalog, &templates).ok());
    for (int64_t i = 0; i < views; ++i) {
      node.Store(kApp, MakeEntry(templates, i));
    }

    // Correctness: both paths must invalidate exactly the matching entry
    // for updates that hit, and nothing for updates that miss.
    const int64_t step = views / 16;
    for (const bool enabled : {true, false}) {
      node.SetPredicateIndexEnabled(enabled);
      for (int j = 0; j < 16; ++j) {
        const int64_t id = j * step;
        const size_t hits = node.OnUpdate(kApp, MakeNotice(templates, id));
        DSSP_CHECK(hits == 1);
        node.Store(kApp, MakeEntry(templates, id));  // Refill.
        DSSP_CHECK(node.OnUpdate(kApp, MakeNotice(templates, views + id)) ==
                   0);
      }
      DSSP_CHECK(node.CacheSize(kApp) == static_cast<size_t>(views));
    }

    // Timed sweeps use updates that invalidate nothing, so the cache stays
    // full and every update pays the whole decision cost for its path.
    SweepPoint point;
    point.views = views;
    for (const bool enabled : {false, true}) {
      node.SetPredicateIndexEnabled(enabled);
      node.OnUpdate(kApp, MakeNotice(templates, views + 1));  // Warm up.
      const auto start = Clock::now();
      for (int j = 0; j < timed_updates; ++j) {
        node.OnUpdate(kApp, MakeNotice(templates, views + 2 + j));
      }
      const double us = MicrosPer(Clock::now() - start, timed_updates);
      (enabled ? point.probe_us : point.scan_us) = us;
    }
    point.speedup = point.scan_us / point.probe_us;
    std::printf("%10lld %14.2f %14.2f %8.1fx\n",
                static_cast<long long>(point.views), point.scan_us,
                point.probe_us, point.speedup);
    points.push_back(point);
  }

  // Gates. Speedup: the probe path must beat the scan by >= 10x at the
  // largest point. Sublinearity: scan cost grows ~linearly with N; the
  // probe path must grow at most ~sqrt of the view-count ratio (a bucket
  // lookup is logarithmic, so sqrt leaves generous timing slack).
  const SweepPoint& first = points.front();
  const SweepPoint& last = points.back();
  const double ratio = static_cast<double>(last.views) /
                       static_cast<double>(first.views);
  const double growth = last.probe_us / first.probe_us;
  const bool speedup_ok = last.speedup >= 10.0;
  const bool sublinear_ok = points.size() < 2 || growth <= std::sqrt(ratio);
  std::printf(
      "\nspeedup at %lld views: %.1fx (gate >= 10x): %s\n"
      "probe growth %.2fx over a %.0fx view ratio (gate <= %.1fx): %s\n",
      static_cast<long long>(last.views), last.speedup,
      speedup_ok ? "PASS" : "FAIL", growth, ratio, std::sqrt(ratio),
      sublinear_ok ? "PASS" : "FAIL");

  if (json_path != nullptr) {
    std::vector<dssp::bench::JsonObject> rows;
    for (const SweepPoint& point : points) {
      dssp::bench::JsonObject row;
      row.Set("views", static_cast<uint64_t>(point.views));
      row.Set("scan_us_per_update", point.scan_us);
      row.Set("probe_us_per_update", point.probe_us);
      row.Set("speedup", point.speedup);
      rows.push_back(std::move(row));
    }
    dssp::bench::JsonObject doc;
    doc.Set("experiment", "ablation_view_index");
    doc.Set("timed_updates", timed_updates);
    doc.Set("max_views", static_cast<uint64_t>(max_views));
    doc.Set("speedup_gate_pass", speedup_ok);
    doc.Set("sublinear_gate_pass", sublinear_ok);
    doc.SetRaw("rows", dssp::bench::JsonArray(rows));
    dssp::bench::WriteJsonFile(json_path, doc);
  }
  return speedup_ok && sublinear_ok ? 0 : 1;
}
