// Ablation: the paper replaces TPC-W's uniform book popularity with a Zipf
// distribution fitted to Amazon sales ranks (Brynjolfsson et al., paper
// footnote 5). How much does that skew matter for the DSSP's hit rate and
// responsiveness? Sweeps the Zipf exponent from 0 (TPC-W's original
// uniform) past the fitted 0.87 at a fixed population of users.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/bookstore.h"

int main() {
  dssp::sim::SimConfig config = dssp::bench::BenchSimConfig();
  const int users = 400;
  std::printf(
      "Ablation — book-popularity skew (bookstore, %d users, MVIS, "
      "duration=%.0fs)\n\n",
      users, config.duration_s);
  std::printf("%8s %10s %10s %10s %12s\n", "theta", "hit rate", "p90 (s)",
              "mean (s)", "home queries");
  std::printf("%s\n", std::string(56, '-').c_str());

  for (double theta : {0.0, 0.5, 0.87, 1.2}) {
    dssp::service::DsspNode node;
    dssp::service::ScalableApp app(
        "bookstore", &node, dssp::crypto::KeyRing::FromPassphrase("skew"));
    dssp::workloads::BookstoreApplication workload;
    workload.set_item_popularity_theta(theta);
    DSSP_CHECK_OK(workload.Setup(app, dssp::bench::BenchScale(), 17));
    DSSP_CHECK_OK(app.Finalize());
    auto generator = workload.NewSession(23);
    auto result = dssp::sim::RunSimulation(app, *generator, users, config);
    DSSP_CHECK(result.ok());
    std::printf("%8.2f %10.3f %10.3f %10.3f %12llu\n", theta,
                result->cache_hit_rate, result->p90_response_s,
                result->mean_response_s,
                static_cast<unsigned long long>(result->home_queries));
  }

  std::printf(
      "\nInterpretation: skewed popularity concentrates lookups on hot "
      "entries, raising\nthe shared-cache hit rate — the paper's realism "
      "fix also makes the DSSP more\neffective than TPC-W's uniform "
      "distribution would suggest.\n");
  return 0;
}
