// Cluster scale-out ablation: throughput of one logical DSSP composed of
// 1..8 member nodes behind the consistent-hash router, versus the same
// workload on a single node. The member worker pools are the bottleneck
// resource (one worker each, deliberately slow lookups), so added nodes buy
// capacity exactly as far as the ring spreads the key space; the run fails
// (DSSP_CHECK) unless 8 nodes deliver at least 3x the 1-node throughput.
//
// The --oracle mode replays a bookstore trace against a cluster-backed app
// — including a mid-run node kill and drain-gated rejoin — and compares
// every panel answer against direct execution on the master database. Any
// stale answer aborts the process, so a consistency violation is a CI
// failure, not a log line.
//
// Flags:
//   --nodes N         sweep only N member nodes (default: 1 2 4 8)
//   --replication R   replica set size (default 2; also sweeps 1 when no
//                     --replication is given)
//   --oracle          run the consistency oracle (with kill + rejoin)
//   --json <path>     write the sweep as machine-readable JSON

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/router.h"
#include "sim/cluster_sim.h"

namespace {

using dssp::cluster::ClusterOptions;
using dssp::cluster::ClusterRouter;

constexpr const char* kApp = "bookstore";
constexpr uint64_t kSeed = 0xC1A5;

struct ClusterSystem {
  std::unique_ptr<ClusterRouter> router;
  std::unique_ptr<dssp::service::ScalableApp> app;
  std::unique_ptr<dssp::workloads::Application> workload;
};

std::unique_ptr<ClusterSystem> BuildClusterSystem(double scale,
                                                  ClusterOptions options) {
  auto system = std::make_unique<ClusterSystem>();
  system->router = std::make_unique<ClusterRouter>(options);
  system->app = std::make_unique<dssp::service::ScalableApp>(
      kApp, system->router.get(),
      dssp::crypto::KeyRing::FromPassphrase("bench-cluster"));
  system->workload = dssp::workloads::MakeApplication(kApp);
  DSSP_CHECK_OK(system->workload->Setup(*system->app, scale, kSeed));
  DSSP_CHECK_OK(system->app->Finalize());
  return system;
}

// The sweep's timing model: member worker pools are the bottleneck (one
// deliberately slow worker each), the home server is fast and wide, and
// clients think briefly — so demand far exceeds one member's capacity and
// the closed loop exposes how much of it each cluster size can serve.
dssp::sim::SimConfig SweepConfig() {
  dssp::sim::SimConfig config;
  config.duration_s = dssp::bench::BenchDuration() / 2.0;
  config.warmup_s = config.duration_s / 3.0;
  config.think_time_mean_s = 1.0;
  config.dssp_workers = 1;
  config.dssp_lookup_s = 0.003;
  config.wan_latency_s = 0.01;
  config.home_workers = 16;
  config.home_query_base_s = 0.0005;
  config.home_query_per_row_s = 0.0;
  config.home_update_base_s = 0.0005;
  config.seed = 97;
  return config;
}

constexpr int kSweepClients = 800;

struct SweepPoint {
  int nodes = 0;
  size_t replication = 0;
  dssp::sim::ClusterSimResult result;
  dssp::cluster::ClusterRouteStats route;
};

SweepPoint RunSweepPoint(int nodes, size_t replication,
                         const dssp::sim::SimConfig& config) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.replication = replication;
  options.seed = kSeed;
  auto system = BuildClusterSystem(dssp::bench::BenchScale(), options);
  auto generator = system->workload->NewSession(23);
  auto result = dssp::sim::RunClusterSimulation(
      *system->router,
      {dssp::sim::Tenant{system->app.get(), generator.get(), kSweepClients}},
      config);
  DSSP_CHECK(result.ok());
  SweepPoint point;
  point.nodes = nodes;
  point.replication = replication;
  point.result = std::move(*result);
  point.route = system->router->route_stats();
  return point;
}

// Trace-driven consistency oracle over a cluster-backed app, with a node
// killed and later rejoined mid-trace. Aborts on the first stale answer.
void RunOracle(int nodes, size_t replication) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.replication = replication;
  options.seed = kSeed;
  auto system = BuildClusterSystem(/*scale=*/0.25, options);
  dssp::service::ScalableApp& app = *system->app;

  auto session = system->workload->NewSession(8);
  dssp::Rng rng(55);
  struct Probe {
    std::string template_id;
    std::vector<dssp::sql::Value> params;
  };
  std::map<std::string, Probe> panel;
  constexpr size_t kPanelCap = 60;
  // Long enough that the kill window (middle third) contains real update
  // traffic, so the rejoin actually replays missed invalidations.
  constexpr int kPages = 240;
  const int kill_node = nodes > 1 ? 1 : 0;
  size_t checks = 0;
  uint64_t replayed = 0;
  bool rejoined = false;

  for (int page = 0; page < kPages; ++page) {
    if (page == kPages / 3) system->router->KillNode(kill_node);
    if (page == 2 * kPages / 3) {
      auto drain = system->router->ReviveNode(kill_node);
      DSSP_CHECK_OK(drain.status());
      replayed = *drain;
      rejoined = true;
    }

    for (const dssp::sim::DbOp& op : session->NextPage(rng)) {
      if (op.is_update) {
        DSSP_CHECK_OK(app.Update(op.template_id, op.params).status());
        continue;
      }
      DSSP_CHECK_OK(app.Query(op.template_id, op.params).status());
      if (panel.size() < kPanelCap) {
        const size_t index = app.templates().QueryIndex(op.template_id);
        const std::string key = dssp::sql::ToSql(
            app.templates().queries()[index].Bind(op.params));
        panel.emplace(key, Probe{op.template_id, op.params});
      }
    }

    for (const auto& [key, probe] : panel) {
      auto via_cluster = app.Query(probe.template_id, probe.params);
      DSSP_CHECK_OK(via_cluster.status());
      const size_t index = app.templates().QueryIndex(probe.template_id);
      auto direct = app.home().database().ExecuteQuery(
          app.templates().queries()[index].Bind(probe.params));
      DSSP_CHECK_OK(direct.status());
      // The oracle proper: a cluster answer differing from the master
      // database is a consistency violation and aborts the run.
      DSSP_CHECK(via_cluster->SameResult(*direct));
      ++checks;
    }
  }
  DSSP_CHECK(nodes < 2 || rejoined);
  std::printf(
      "oracle: nodes=%d replication=%zu checks=%zu violations=0 "
      "(killed node %d, rejoined with %llu notices replayed)\n",
      nodes, replication, checks, kill_node,
      static_cast<unsigned long long>(replayed));
}

}  // namespace

int main(int argc, char** argv) {
  const char* nodes_flag = dssp::bench::FlagValue(argc, argv, "--nodes");
  const char* repl_flag = dssp::bench::FlagValue(argc, argv, "--replication");
  const char* json_path = dssp::bench::FlagValue(argc, argv, "--json");
  const bool run_oracle = dssp::bench::HasFlag(argc, argv, "--oracle");

  std::vector<int> node_counts = {1, 2, 4, 8};
  if (nodes_flag != nullptr) node_counts = {std::atoi(nodes_flag)};
  std::vector<size_t> replications = {1, 2};
  if (repl_flag != nullptr) {
    replications = {static_cast<size_t>(std::atoi(repl_flag))};
  }

  if (run_oracle) {
    for (int nodes : node_counts) {
      for (size_t replication : replications) {
        RunOracle(nodes, replication);
      }
    }
  }

  const dssp::sim::SimConfig config = SweepConfig();
  std::printf(
      "\nCluster scale-out — %s, %d clients, duration=%.0fs "
      "(measured %.0fs)\n\n",
      kApp, kSweepClients, config.duration_s,
      config.duration_s - config.warmup_s);
  std::printf("%5s %5s %10s %8s %8s %9s %10s %9s\n", "nodes", "repl",
              "pages/s", "speedup", "p90(s)", "hit_rate", "fallbacks",
              "rebalance");

  std::vector<SweepPoint> points;
  std::map<size_t, double> base_throughput;  // replication -> 1-node pages/s.
  for (size_t replication : replications) {
    for (int nodes : node_counts) {
      SweepPoint point = RunSweepPoint(nodes, replication, config);
      const dssp::sim::SimResult& tenant = point.result.tenants[0];
      if (nodes == 1) {
        base_throughput[replication] = point.result.throughput_pages_per_s;
      }
      const double base = base_throughput.count(replication)
                              ? base_throughput[replication]
                              : 0.0;
      const double speedup =
          base > 0 ? point.result.throughput_pages_per_s / base : 0.0;
      std::printf("%5d %5zu %10.1f %8.2f %8.3f %9.3f %10llu %9llu\n", nodes,
                  replication, point.result.throughput_pages_per_s, speedup,
                  tenant.p90_response_s, tenant.cache_hit_rate,
                  static_cast<unsigned long long>(point.result.fallback_ops),
                  static_cast<unsigned long long>(point.route.rebalances));
      points.push_back(std::move(point));
    }
    std::printf("\n");
  }

  // The acceptance gate: 8 members must buy at least 3x one member's
  // throughput (per replication level swept with both endpoints).
  for (size_t replication : replications) {
    const SweepPoint* one = nullptr;
    const SweepPoint* eight = nullptr;
    for (const SweepPoint& p : points) {
      if (p.replication != replication) continue;
      if (p.nodes == 1) one = &p;
      if (p.nodes == 8) eight = &p;
    }
    if (one == nullptr || eight == nullptr) continue;
    const double speedup = eight->result.throughput_pages_per_s /
                           one->result.throughput_pages_per_s;
    std::printf("replication=%zu: 8-node speedup %.2fx (gate: >= 3x)\n",
                replication, speedup);
    DSSP_CHECK(speedup >= 3.0);
  }

  if (json_path != nullptr) {
    std::vector<dssp::bench::JsonObject> rows;
    for (const SweepPoint& point : points) {
      dssp::bench::JsonObject row;
      row.Set("nodes", point.nodes);
      row.Set("replication", static_cast<uint64_t>(point.replication));
      dssp::bench::FillResultFields(point.result.tenants[0],
                                    config.duration_s, config.warmup_s, &row);
      row.Set("throughput_pages_per_s",
              point.result.throughput_pages_per_s);
      row.Set("pages_measured",
              static_cast<uint64_t>(point.result.pages_measured));
      row.Set("fallback_ops", point.result.fallback_ops);
      row.Set("unrouted_ops", point.result.unrouted_ops);
      rows.push_back(std::move(row));
    }
    dssp::bench::JsonObject doc;
    doc.Set("experiment", "ablation_cluster_scaleout");
    doc.Set("app", kApp);
    doc.Set("clients", kSweepClients);
    doc.Set("duration_s", config.duration_s);
    doc.Set("warmup_s", config.warmup_s);
    doc.Set("oracle_ran", run_oracle);
    doc.SetRaw("rows", dssp::bench::JsonArray(rows));
    dssp::bench::WriteJsonFile(json_path, doc);
  }
  return 0;
}
