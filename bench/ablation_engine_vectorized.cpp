// Ablation: vectorized columnar engine + compiled query programs vs. the
// row-at-a-time reference interpreter.
//
// For every application, each registered query template is compiled once
// (QueryProgram::Compile) and driven with data-derived parameter bindings
// through both paths; results are checked bit-identical (serialized bytes)
// before anything is timed. Per-template throughput is reported along with
// an access-path classification:
//
//   point     every FROM slot is served by an equality index probe
//   scan      single-table full scan, no aggregation, >= kScanFloor rows
//   scan-sm   full scan over a table too small for kernels to matter
//   scan-join multi-table full scan (the join loop dominates both paths)
//   scan-agg  full scan feeding GROUP BY / aggregation
//
// Two synthetic gate templates per application (a selective range scan and
// an equality point probe over the largest base table) anchor the release
// gates, independent of each workload's template mix. The gate scan uses a
// high-percentile parameter so it measures the filter kernel, not result
// materialization (which both paths pay identically):
//
//   GATE 1  the gate scan reaches >= 5x interpreter throughput;
//   GATE 2  `point` gate templates do not regress (program >= 0.8x
//           interpreter; probes were already O(matches), so parity is the
//           expectation).
//
// Workload templates are swept for coverage and reported with their class;
// their selectivity is data-dependent, so they inform but do not gate.
//
// Flags: --json <path> machine-readable results; --min-time <s> per-side
// measurement time (default 0.3; CI smoke uses a smaller value); --scale
// <f> database scale (default 1.0).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/database.h"
#include "engine/program.h"
#include "engine/table.h"
#include "sql/parser.h"
#include "templates/template.h"

namespace {

using dssp::Rng;
using dssp::engine::Database;
using dssp::engine::QueryProgram;
using dssp::engine::Table;
using dssp::sql::Value;

using Clock = std::chrono::steady_clock;

constexpr size_t kScanFloor = 500;  // Min base rows for the 5x scan gate.
constexpr double kScanGate = 5.0;
constexpr double kPointGate = 0.8;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// A value sampled from the live data of `table.col` (NULL if empty).
Value SampleColumn(const Table& table, size_t col, Rng& rng) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (table.slot_count() == 0) break;
    const size_t slot = rng.NextBelow(table.slot_count());
    if (table.IsLive(slot)) return table.RowAt(slot)[col];
  }
  return Value::Null();
}

// For each parameter of `stmt`, the (table, column) it is compared with.
struct ParamSpec {
  bool is_limit = false;
  std::string table;
  size_t col = 0;
};

std::vector<ParamSpec> ParamSpecs(const dssp::sql::Statement& stmt,
                                  const dssp::catalog::Catalog& catalog) {
  std::vector<ParamSpec> specs(static_cast<size_t>(stmt.num_params));
  const dssp::sql::SelectStatement& select = stmt.select();
  for (const dssp::sql::Comparison& cmp : select.where) {
    for (const auto& [param_op, other_op] :
         {std::pair(&cmp.lhs, &cmp.rhs), std::pair(&cmp.rhs, &cmp.lhs)}) {
      if (!dssp::sql::IsParameter(*param_op) || !dssp::sql::IsColumn(*other_op)) {
        continue;
      }
      ParamSpec& spec = specs[static_cast<size_t>(
          std::get<dssp::sql::Parameter>(*param_op).index)];
      if (!spec.table.empty()) continue;
      const auto& ref = std::get<dssp::sql::ColumnRef>(*other_op);
      for (const dssp::sql::TableRef& from : select.from) {
        if (!ref.table.empty() && ref.table != from.effective_name()) continue;
        const dssp::catalog::TableSchema* schema = catalog.FindTable(from.table);
        if (schema == nullptr) continue;
        const std::optional<size_t> idx = schema->ColumnIndex(ref.column);
        if (!idx.has_value()) continue;
        spec.table = from.table;
        spec.col = *idx;
        break;
      }
    }
  }
  if (select.limit.has_value() && dssp::sql::IsParameter(*select.limit)) {
    specs[static_cast<size_t>(
              std::get<dssp::sql::Parameter>(*select.limit).index)]
        .is_limit = true;
  }
  return specs;
}

struct Measurement {
  std::string id;
  std::string cls;
  uint64_t rows_per_query = 0;
  double interp_qps = 0;
  double program_qps = 0;
  double speedup = 0;
};

// Times both paths over `bindings` (all verified bit-identical first).
// Returns nullopt if no binding executes successfully.
std::optional<Measurement> Measure(const Database& db,
                                   const dssp::sql::Statement& stmt,
                                   const QueryProgram& program,
                                   const std::vector<std::vector<Value>>& all,
                                   double min_time) {
  std::vector<dssp::sql::Statement> bound;
  std::vector<std::vector<Value>> bindings;
  uint64_t rows = 0;
  for (const std::vector<Value>& params : all) {
    dssp::sql::Statement instance = dssp::sql::BindParameters(stmt, params);
    const auto via_interp = db.ExecuteQuery(instance);
    const auto via_program = program.Execute(db, params);
    DSSP_CHECK(via_interp.ok() == via_program.ok());
    if (!via_interp.ok()) continue;
    DSSP_CHECK(via_interp->Serialize() == via_program->Serialize());
    rows += via_interp->num_rows();
    bound.push_back(std::move(instance));
    bindings.push_back(params);
  }
  if (bound.empty()) return std::nullopt;

  Measurement m;
  m.rows_per_query = rows / bound.size();
  for (const bool compiled : {false, true}) {
    uint64_t execs = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    while (elapsed < min_time) {
      for (size_t i = 0; i < bound.size(); ++i) {
        if (compiled) {
          auto result = program.Execute(db, bindings[i]);
          DSSP_CHECK(result.ok());
        } else {
          auto result = db.ExecuteQuery(bound[i]);
          DSSP_CHECK(result.ok());
        }
      }
      execs += bound.size();
      elapsed = Seconds(Clock::now() - start);
    }
    const double qps = static_cast<double>(execs) / elapsed;
    (compiled ? m.program_qps : m.interp_qps) = qps;
  }
  m.speedup = m.interp_qps > 0 ? m.program_qps / m.interp_qps : 0;
  return m;
}

std::string Classify(const QueryProgram& program,
                     const dssp::sql::SelectStatement& select,
                     const Database& db) {
  if (!program.uses_full_scan()) return "point";
  if (select.from.size() > 1) return "scan-join";
  if (select.has_aggregate()) return "scan-agg";
  const size_t rows = db.GetTable(select.from[0].table).num_rows();
  return rows >= kScanFloor ? "scan" : "scan-sm";
}

// The largest base table and a numeric non-key column of it, for the
// synthetic gate templates.
struct GateTarget {
  std::string table;
  std::string key_col;    // First column (equality probe target).
  std::string range_col;  // A numeric column for the `>= ?` scan.
};

std::optional<GateTarget> PickGateTarget(const Database& db) {
  GateTarget best;
  size_t best_rows = 0;
  for (const std::string& name : db.catalog().TableNames()) {
    const Table& table = db.GetTable(name);
    const auto& schema = table.schema();
    std::string range_col;
    for (const auto& col : schema.columns()) {
      if (col.type == dssp::catalog::ColumnType::kString) continue;
      if (schema.IsPrimaryKeyColumn(col.name)) continue;
      range_col = col.name;
      break;
    }
    if (range_col.empty()) continue;
    if (table.num_rows() > best_rows) {
      best_rows = table.num_rows();
      best = GateTarget{name, schema.columns()[0].name, range_col};
    }
  }
  if (best_rows == 0) return std::nullopt;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = dssp::bench::FlagValue(argc, argv, "--json");
  const char* min_time_flag = dssp::bench::FlagValue(argc, argv, "--min-time");
  const char* scale_flag = dssp::bench::FlagValue(argc, argv, "--scale");
  const double min_time = min_time_flag != nullptr ? std::atof(min_time_flag) : 0.3;
  const double scale = scale_flag != nullptr ? std::atof(scale_flag) : 1.0;

  std::printf(
      "Ablation — vectorized engine + compiled programs vs. interpreter\n"
      "(per-template throughput; results verified bit-identical before\n"
      " timing; scale %.2f, %.2fs per measurement)\n\n",
      scale, min_time);

  bool scan_gate_ok = true;
  bool point_gate_ok = true;
  double worst_scan = 1e9;
  double worst_point = 1e9;
  std::string json_apps;

  for (const char* name : {"toystore", "auction", "bboard", "bookstore"}) {
    auto system = dssp::bench::BuildSystem(name, scale, 17);
    const Database& db = system->app->home().database();
    Rng rng(4242);

    std::printf("%s\n", name);
    std::printf("  %-10s %-8s %7s %12s %12s %9s\n", "template", "class",
                "rows/q", "interp q/s", "program q/s", "speedup");

    std::vector<Measurement> measurements;
    const auto run_one = [&](const std::string& id,
                             const dssp::sql::Statement& stmt, bool is_gate,
                             std::vector<std::vector<Value>> bindings = {}) {
      const auto program = QueryProgram::Compile(db.catalog(), stmt.select());
      DSSP_CHECK(program.ok());
      const std::vector<ParamSpec> specs = ParamSpecs(stmt, db.catalog());
      for (size_t b = bindings.size(); b < 8; ++b) {
        std::vector<Value> params;
        for (const ParamSpec& spec : specs) {
          if (spec.is_limit) {
            params.push_back(Value(static_cast<int64_t>(1 + rng.NextBelow(20))));
          } else if (!spec.table.empty()) {
            params.push_back(SampleColumn(db.GetTable(spec.table), spec.col, rng));
          } else {
            params.push_back(Value(static_cast<int64_t>(rng.NextBelow(100))));
          }
        }
        bindings.push_back(std::move(params));
      }
      std::optional<Measurement> m =
          Measure(db, stmt, *program, bindings, min_time);
      if (!m.has_value()) return;
      m->id = id;
      m->cls = Classify(*program, stmt.select(), db);
      std::printf("  %-10s %-8s %7llu %12.0f %12.0f %8.1fx\n", m->id.c_str(),
                  m->cls.c_str(),
                  static_cast<unsigned long long>(m->rows_per_query),
                  m->interp_qps, m->program_qps, m->speedup);
      if (m->cls == "scan" && is_gate) {
        worst_scan = std::min(worst_scan, m->speedup);
        if (m->speedup < kScanGate) scan_gate_ok = false;
      }
      if (m->cls == "point" && is_gate) {
        worst_point = std::min(worst_point, m->speedup);
        if (m->speedup < kPointGate) point_gate_ok = false;
      }
      measurements.push_back(std::move(*m));
    };

    // Synthetic gate templates over the largest base table. The scan's
    // `>= ?` parameter is the max of a data sample, so it selects a thin
    // tail: the measurement is the filter over all rows, not the (shared)
    // cost of materializing half the table into the result.
    const std::optional<GateTarget> gate = PickGateTarget(db);
    DSSP_CHECK(gate.has_value());
    const Table& gate_table = db.GetTable(gate->table);
    const size_t range_idx =
        *gate_table.schema().ColumnIndex(gate->range_col);
    std::vector<std::vector<Value>> selective;
    for (int b = 0; b < 8; ++b) {
      Value best;
      for (int s = 0; s < 64; ++s) {
        Value v = SampleColumn(gate_table, range_idx, rng);
        if (v.is_null()) continue;
        if (best.is_null() || best < v) best = v;
      }
      selective.push_back({best});
    }
    run_one("gate-scan",
            dssp::sql::ParseOrDie("SELECT " + gate->key_col + " FROM " +
                                  gate->table + " WHERE " + gate->range_col +
                                  " >= ?"),
            /*is_gate=*/true, std::move(selective));
    run_one("gate-point",
            dssp::sql::ParseOrDie("SELECT " + gate->key_col + " FROM " +
                                  gate->table + " WHERE " + gate->key_col +
                                  " = ?"),
            /*is_gate=*/true);

    // Every registered workload template.
    for (const auto& tmpl : system->app->templates().queries()) {
      run_one(tmpl.id(), tmpl.statement(), /*is_gate=*/false);
    }

    if (json_path != nullptr) {
      std::string rows;
      for (const Measurement& m : measurements) {
        dssp::bench::JsonObject row;
        row.Set("id", m.id);
        row.Set("class", m.cls);
        row.Set("rows_per_query", m.rows_per_query);
        row.Set("interp_qps", m.interp_qps);
        row.Set("program_qps", m.program_qps);
        row.Set("speedup", m.speedup);
        if (!rows.empty()) rows += ",";
        rows += row.ToString();
      }
      dssp::bench::JsonObject app;
      app.Set("app", name);
      app.SetRaw("templates", "[" + rows + "]");
      if (!json_apps.empty()) json_apps += ",";
      json_apps += app.ToString();
    }
    std::printf("\n");
  }

  std::printf(
      "Interpretation: `scan` templates stream the columnar sidecar through\n"
      "typed kernels instead of resolving names and copying sql::Value per\n"
      "row, so they gain the most; `point` templates were already served by\n"
      "the hash index and only shed the per-query binder, so parity is the\n"
      "expectation there. Aggregation (scan-agg) shares its grouping cost\n"
      "between both paths and lands in between.\n\n");
  std::printf("gate: scan speedup >= %.1fx   %s (worst %.1fx)\n", kScanGate,
              scan_gate_ok ? "PASS" : "FAIL",
              worst_scan == 1e9 ? 0.0 : worst_scan);
  std::printf("gate: point ratio  >= %.1fx   %s (worst %.1fx)\n", kPointGate,
              point_gate_ok ? "PASS" : "FAIL",
              worst_point == 1e9 ? 0.0 : worst_point);

  if (json_path != nullptr) {
    dssp::bench::JsonObject doc;
    doc.Set("experiment", "engine_vectorized");
    doc.Set("scale", scale);
    doc.Set("min_time_s", min_time);
    doc.Set("scan_gate", kScanGate);
    doc.Set("point_gate", kPointGate);
    doc.Set("scan_gate_pass", scan_gate_ok);
    doc.Set("point_gate_pass", point_gate_ok);
    doc.SetRaw("apps", "[" + json_apps + "]");
    dssp::bench::WriteJsonFile(json_path, doc);
  }
  return scan_gate_ok && point_gate_ok ? 0 : 1;
}
