// Ablation: how much does the Section 4.5 integrity-constraint refinement
// (primary-key and foreign-key rules) buy? Reports (a) the IPM pair counts
// with and without the refinement, and (b) template-inspection invalidation
// counts over a real trace.

#include <cstdio>

#include "bench/bench_util.h"
#include "invalidation/strategies.h"

namespace {

using dssp::analysis::ExposureLevel;
using dssp::analysis::IpmCharacterization;
using dssp::analysis::IpmOptions;
using dssp::invalidation::CachedQueryView;
using dssp::invalidation::Decision;
using dssp::invalidation::TemplateInspectionStrategy;
using dssp::invalidation::UpdateView;

}  // namespace

int main() {
  std::printf(
      "Ablation — Section 4.5 integrity-constraint refinement\n\n"
      "%-11s %16s %16s | %18s %18s\n",
      "Application", "A=0 pairs (on)", "A=0 pairs (off)", "TIS inv/upd (on)",
      "TIS inv/upd (off)");
  std::printf("%s\n", std::string(88, '-').c_str());

  for (std::string_view name : dssp::workloads::kEvaluationApps) {
    auto system = dssp::bench::BuildSystem(std::string(name), 0.25, 3);
    const auto& templates = system->app->templates();
    const auto& catalog = system->app->home().database().catalog();

    IpmOptions with;
    IpmOptions without;
    without.use_integrity_constraints = false;
    const auto summary_with =
        IpmCharacterization::Compute(templates, catalog, with).Summarize();
    const auto summary_without =
        IpmCharacterization::Compute(templates, catalog, without).Summarize();

    // Trace: count template-level invalidation decisions across all
    // (update instance, query template) pairs of a workload run.
    TemplateInspectionStrategy tis_with(catalog, true);
    TemplateInspectionStrategy tis_without(catalog, false);
    auto session = system->workload->NewSession(9);
    dssp::Rng rng(41);
    uint64_t updates = 0;
    uint64_t inv_with = 0;
    uint64_t inv_without = 0;
    for (int page = 0; page < 600; ++page) {
      for (const dssp::sim::DbOp& op : session->NextPage(rng)) {
        if (!op.is_update) continue;
        ++updates;
        const size_t index = templates.UpdateIndex(op.template_id);
        UpdateView uv;
        uv.level = ExposureLevel::kTemplate;
        uv.tmpl = &templates.updates()[index];
        for (const auto& q : templates.queries()) {
          CachedQueryView qv;
          qv.level = ExposureLevel::kTemplate;
          qv.tmpl = &q;
          if (tis_with.Decide(uv, qv) == Decision::kInvalidate) ++inv_with;
          if (tis_without.Decide(uv, qv) == Decision::kInvalidate) {
            ++inv_without;
          }
        }
      }
    }
    std::printf("%-11s %16zu %16zu | %18.2f %18.2f\n",
                std::string(name).c_str(), summary_with.all_zero,
                summary_without.all_zero,
                updates == 0 ? 0.0
                             : static_cast<double>(inv_with) /
                                   static_cast<double>(updates),
                updates == 0 ? 0.0
                             : static_cast<double>(inv_without) /
                                   static_cast<double>(updates));
  }

  std::printf(
      "\nInterpretation: the refinement increases the A=0 pair count (more\n"
      "free encryption) and lowers per-update template-level invalidation\n"
      "fan-out (more scalability headroom).\n");
  return 0;
}
