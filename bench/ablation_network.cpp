// Ablation: how sensitive is the DSSP architecture to the WAN between the
// DSSP node and the application home server? The paper pins it at 100 ms /
// 2 Mbps ("a DSSP node is close to the clients, most of which are far from
// any single home server"). Sweeps the one-way WAN latency at a fixed user
// population, under full exposure (MVIS) and under blind invalidation
// (MBS) — misses pay the WAN, so the cost of conservative invalidation
// grows with distance.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using dssp::analysis::ExposureLevel;

dssp::sim::SimResult Run(double wan_latency_s, ExposureLevel level) {
  dssp::sim::SimConfig config = dssp::bench::BenchSimConfig();
  config.wan_latency_s = wan_latency_s;
  auto system = dssp::bench::BuildSystem("bookstore",
                                         dssp::bench::BenchScale(), 17);
  DSSP_CHECK_OK(system->app->SetExposure(dssp::bench::UniformExposure(
      *system->app, level,
      level == ExposureLevel::kBlind ? ExposureLevel::kBlind
                                     : ExposureLevel::kStmt)));
  auto generator = system->workload->NewSession(23);
  auto result =
      dssp::sim::RunSimulation(*system->app, *generator, 420, config);
  DSSP_CHECK(result.ok());
  return *result;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — WAN latency sensitivity (bookstore, 420 users, "
      "duration=%.0fs)\n\n",
      dssp::bench::BenchDuration());
  std::printf("%14s | %21s | %21s\n", "", "MVIS (full exposure)",
              "MBS (full encryption)");
  std::printf("%14s | %10s %10s | %10s %10s\n", "WAN latency", "p90 (s)",
              "hit rate", "p90 (s)", "hit rate");
  std::printf("%s\n", std::string(64, '-').c_str());

  for (double latency : {0.025, 0.05, 0.1, 0.2, 0.4}) {
    const dssp::sim::SimResult view = Run(latency, ExposureLevel::kView);
    const dssp::sim::SimResult blind = Run(latency, ExposureLevel::kBlind);
    std::printf("%11.0f ms | %10.3f %10.3f | %10.3f %10.3f\n",
                latency * 1000, view.p90_response_s, view.cache_hit_rate,
                blind.p90_response_s, blind.cache_hit_rate);
  }

  std::printf(
      "\nInterpretation: under precise invalidation (MVIS) the home server "
      "stays\nunloaded and response times simply track the WAN round trip; "
      "under blind\ninvalidation every query reaches the home server, which "
      "saturates at this\npopulation regardless of distance — encrypting "
      "everything turns the cheap\nshared cache back into a single remote "
      "bottleneck.\n");
  return 0;
}
