// Reproduces Figure 7: for each application, the exposure level of every
// query and update template before (Step 1: data-privacy law only) and
// after (Step 2: static analysis) the scalability-conscious security design
// methodology. The area between the two lines is the security gained for
// free.
//
// Also prints the Section 5.4 headline: how many of the bookstore's query
// templates can have their results encrypted with no scalability impact
// (the paper reports 21 of 28).

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "analysis/methodology.h"
#include "bench/bench_util.h"

namespace {

using dssp::analysis::ExposureLevel;
using dssp::analysis::ExposureLevelName;

void PrintHistogram(const char* title,
                    const std::vector<ExposureLevel>& initial,
                    const std::vector<ExposureLevel>& final_levels) {
  std::printf("  %s (initial -> final, sorted by final exposure):\n", title);
  // Pair up and sort by (final, initial) to mirror the figure's x-axis
  // "templates in increasing order of exposure".
  std::vector<std::pair<ExposureLevel, ExposureLevel>> pairs;
  for (size_t i = 0; i < initial.size(); ++i) {
    pairs.emplace_back(final_levels[i], initial[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  std::printf("    initial: ");
  for (const auto& [f, i] : pairs) {
    std::printf("%-9s", ExposureLevelName(i));
  }
  std::printf("\n    final:   ");
  for (const auto& [f, i] : pairs) {
    std::printf("%-9s", ExposureLevelName(f));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 7 — exposure reduction from the static analysis\n");
  for (std::string_view name : dssp::workloads::kEvaluationApps) {
    auto system = dssp::bench::BuildSystem(std::string(name), 0.25, 1);
    const auto& catalog = system->app->home().database().catalog();
    const dssp::analysis::SecurityReport report =
        dssp::analysis::RunMethodology(
            system->app->templates(), catalog,
            system->workload->CompulsoryEncryption(catalog));

    std::printf("\n== %s ==\n", std::string(name).c_str());
    std::vector<ExposureLevel> qi = report.initial.query_levels;
    std::vector<ExposureLevel> qf = report.final.query_levels;
    std::vector<ExposureLevel> ui = report.initial.update_levels;
    std::vector<ExposureLevel> uf = report.final.update_levels;
    PrintHistogram("query templates", qi, qf);
    PrintHistogram("update templates", ui, uf);

    size_t reduced = 0;
    for (const auto& change : report.changes) {
      if (change.final != change.initial) ++reduced;
    }
    std::printf(
        "  %zu of %zu templates reduced; %zu of %zu query templates end with "
        "encrypted results (level < view)\n",
        reduced, report.changes.size(), report.QueriesWithEncryptedResults(),
        report.final.query_levels.size());
    if (name == "bookstore") {
      std::printf(
          "  [Section 5.4 headline: paper reports 21 of 28 bookstore query "
          "templates with results encryptable at no scalability cost]\n");
    }
  }
  return 0;
}
