// Ablation: how much work does the statement-level independence solver do
// inside MSIS, and how much further does view inspection (MVIS) refine?
// For each application, replays a trace against a pool of cached query
// instances and reports the fraction of (update, cached entry) decisions
// that invalidate, per strategy variant.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "invalidation/strategies.h"

namespace {

using dssp::analysis::ExposureLevel;
using dssp::invalidation::CachedQueryView;
using dssp::invalidation::Decision;
using dssp::invalidation::StatementInspectionStrategy;
using dssp::invalidation::UpdateView;
using dssp::invalidation::ViewInspectionStrategy;

struct Cached {
  size_t query_index;
  dssp::sql::Statement statement;
  dssp::engine::QueryResult result;
};

}  // namespace

int main() {
  std::printf(
      "Ablation — MSIS independence solver and MVIS view refinement\n"
      "(fraction of decisions that invalidate; lower is better)\n\n");
  std::printf("%-11s %14s %14s %14s\n", "Application", "MSIS(no solver)",
              "MSIS", "MVIS");
  std::printf("%s\n", std::string(60, '-').c_str());

  for (std::string_view name : dssp::workloads::kEvaluationApps) {
    auto system = dssp::bench::BuildSystem(std::string(name), 0.25, 3);
    auto& db = system->app->home().database();
    const auto& templates = system->app->templates();
    const auto& catalog = db.catalog();

    StatementInspectionStrategy sis_no_solver(catalog,
                                              /*use_independence_solver=*/
                                              false);
    StatementInspectionStrategy sis(catalog);
    ViewInspectionStrategy vis(catalog);

    auto session = system->workload->NewSession(9);
    dssp::Rng rng(43);
    std::map<std::string, Cached> cached;
    uint64_t decisions = 0;
    uint64_t inv_no_solver = 0;
    uint64_t inv_sis = 0;
    uint64_t inv_vis = 0;

    for (int page = 0; page < 400; ++page) {
      for (const dssp::sim::DbOp& op : session->NextPage(rng)) {
        if (!op.is_update) {
          const size_t index = templates.QueryIndex(op.template_id);
          auto bound = templates.queries()[index].Bind(op.params);
          const std::string key = dssp::sql::ToSql(bound);
          if (cached.size() < 120 || cached.count(key) != 0) {
            auto result = db.ExecuteQuery(bound);
            DSSP_CHECK(result.ok());
            cached[key] = Cached{index, std::move(bound),
                                 std::move(*result)};
          }
          continue;
        }
        const size_t u_index = templates.UpdateIndex(op.template_id);
        const auto& u_tmpl = templates.updates()[u_index];
        const dssp::sql::Statement u_stmt = u_tmpl.Bind(op.params);
        UpdateView uv;
        uv.level = ExposureLevel::kStmt;
        uv.tmpl = &u_tmpl;
        uv.statement = &u_stmt;
        for (const auto& [key, entry] : cached) {
          CachedQueryView qv;
          qv.level = ExposureLevel::kView;
          qv.tmpl = &templates.queries()[entry.query_index];
          qv.statement = &entry.statement;
          qv.result = &entry.result;
          ++decisions;
          if (sis_no_solver.Decide(uv, qv) == Decision::kInvalidate) {
            ++inv_no_solver;
          }
          if (sis.Decide(uv, qv) == Decision::kInvalidate) ++inv_sis;
          if (vis.Decide(uv, qv) == Decision::kInvalidate) ++inv_vis;
        }
        DSSP_CHECK(db.ExecuteUpdate(u_stmt).ok());
        // Refresh cached results so MVIS sees current views.
        for (auto& [key, entry] : cached) {
          auto fresh = db.ExecuteQuery(entry.statement);
          DSSP_CHECK(fresh.ok());
          entry.result = std::move(*fresh);
        }
      }
    }
    const double denom = decisions == 0 ? 1.0 : static_cast<double>(decisions);
    std::printf("%-11s %14.4f %14.4f %14.4f\n", std::string(name).c_str(),
                static_cast<double>(inv_no_solver) / denom,
                static_cast<double>(inv_sis) / denom,
                static_cast<double>(inv_vis) / denom);
  }

  std::printf(
      "\nInterpretation: the parameter-level independence test removes the\n"
      "bulk of statement-level invalidations; view inspection shaves off a\n"
      "further slice (deletions/modifications whose rows are provably absent\n"
      "from the cached result).\n");
  return 0;
}
