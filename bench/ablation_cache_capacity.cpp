// Ablation: a cost-effective DSSP caches data from many applications, so
// each tenant gets a bounded slice of memory. How does the per-application
// entry budget affect hit rate and responsiveness? Sweeps the LRU capacity
// of the bookstore's cache at a fixed user population under full exposure.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  dssp::sim::SimConfig config = dssp::bench::BenchSimConfig();
  const int users = 400;
  std::printf(
      "Ablation — per-tenant cache capacity (bookstore, %d users, MVIS, "
      "duration=%.0fs)\n\n",
      users, config.duration_s);
  std::printf("%10s %10s %10s %12s %12s\n", "capacity", "hit rate",
              "p90 (s)", "evictions", "final size");
  std::printf("%s\n", std::string(60, '-').c_str());

  for (size_t capacity : {size_t{50}, size_t{200}, size_t{1000},
                          size_t{5000}, size_t{0}}) {
    auto system = dssp::bench::BuildSystem("bookstore",
                                           dssp::bench::BenchScale(), 17);
    system->node.SetCacheCapacity("bookstore", capacity);
    auto generator = system->workload->NewSession(23);
    auto result =
        dssp::sim::RunSimulation(*system->app, *generator, users, config);
    DSSP_CHECK(result.ok());
    char cap_label[32];
    if (capacity == 0) {
      std::snprintf(cap_label, sizeof(cap_label), "unlimited");
    } else {
      std::snprintf(cap_label, sizeof(cap_label), "%zu", capacity);
    }
    std::printf("%10s %10.3f %10.3f %12llu %12zu\n", cap_label,
                result->cache_hit_rate, result->p90_response_s,
                static_cast<unsigned long long>(
                    system->node.CacheEvictions("bookstore")),
                system->node.CacheSize("bookstore"));
  }

  std::printf(
      "\nInterpretation: the working set is modest — a few thousand entries "
      "capture\nnearly the unlimited-cache hit rate, so a shared DSSP can "
      "pack many tenants\nper node (the paper's cost-effectiveness "
      "premise).\n");
  return 0;
}
