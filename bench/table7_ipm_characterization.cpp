// Reproduces Table 7: IPM characterization results for the three benchmark
// applications. Each cell counts update/query template pairs. Paper shape:
// the majority of pairs have A = B = C = 0; among the A = 1 pairs, the
// equalities B = A and/or C = B hold for most.

#include <cstdio>

#include "analysis/ipm.h"
#include "bench/bench_util.h"

int main() {
  std::printf("Table 7 — IPM characterization results (pair counts)\n\n");
  std::printf("%-11s %8s | %22s | %22s | %6s\n", "", "A=B=", "B < A",
              "B = A", "");
  std::printf("%-11s %8s | %10s %10s | %10s %10s | %6s\n", "Application",
              "C=0", "C < B", "C = B", "C < B", "C = B", "total");
  std::printf("%s\n", std::string(80, '-').c_str());

  for (std::string_view name : dssp::workloads::kEvaluationApps) {
    auto system = dssp::bench::BuildSystem(std::string(name), 0.25, 1);
    const auto ipm = dssp::analysis::IpmCharacterization::Compute(
        system->app->templates(), system->app->home().database().catalog());
    const auto summary = ipm.Summarize();
    std::printf("%-11s %8zu | %10zu %10zu | %10zu %10zu | %6zu\n",
                std::string(name).c_str(), summary.all_zero,
                summary.b_lt_a_c_lt_b, summary.b_lt_a_c_eq_b,
                summary.b_eq_a_c_lt_b, summary.b_eq_a_c_eq_b,
                summary.total());
  }

  std::printf(
      "\nPaper shape check: for each application, the A=B=C=0 column is the\n"
      "majority, and most remaining pairs satisfy B=A and/or C=B.\n");
  return 0;
}
