// Microbenchmarks for the static analysis: template creation, IPM
// characterization, and the full methodology on the largest application
// (bookstore: 28 x 12 template pairs).

#include <benchmark/benchmark.h>

#include "analysis/methodology.h"
#include "bench/bench_util.h"

namespace {

using dssp::bench::BuildSystem;

const dssp::bench::System& System() {
  static auto* system = BuildSystem("bookstore", 0.1, 5).release();
  return *system;
}

void BM_QueryTemplateCreate(benchmark::State& state) {
  const auto& catalog = System().app->home().database().catalog();
  for (auto _ : state) {
    auto tmpl = dssp::templates::QueryTemplate::Create(
        "Q", "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
             "WHERE item.i_a_id = author.a_id AND i_subject = ? "
             "ORDER BY i_title LIMIT 50",
        catalog);
    benchmark::DoNotOptimize(tmpl);
  }
}
BENCHMARK(BM_QueryTemplateCreate);

void BM_CharacterizePair(benchmark::State& state) {
  const auto& templates = System().app->templates();
  const auto& catalog = System().app->home().database().catalog();
  const auto& u = templates.updates()[5];  // setStock.
  const auto& q = templates.queries()[3];  // subject search.
  for (auto _ : state) {
    auto pc = dssp::analysis::CharacterizePair(u, q, catalog);
    benchmark::DoNotOptimize(pc);
  }
}
BENCHMARK(BM_CharacterizePair);

void BM_IpmComputeFullApp(benchmark::State& state) {
  const auto& templates = System().app->templates();
  const auto& catalog = System().app->home().database().catalog();
  for (auto _ : state) {
    auto ipm =
        dssp::analysis::IpmCharacterization::Compute(templates, catalog);
    benchmark::DoNotOptimize(ipm);
  }
  state.counters["pairs"] = static_cast<double>(
      templates.num_queries() * templates.num_updates());
}
BENCHMARK(BM_IpmComputeFullApp);

void BM_RunMethodologyFullApp(benchmark::State& state) {
  const auto& templates = System().app->templates();
  const auto& catalog = System().app->home().database().catalog();
  const auto policy = System().workload->CompulsoryEncryption(catalog);
  for (auto _ : state) {
    auto report =
        dssp::analysis::RunMethodology(templates, catalog, policy);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_RunMethodologyFullApp);

}  // namespace

BENCHMARK_MAIN();
