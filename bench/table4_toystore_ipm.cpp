// Reproduces Table 4: the IPM characterization of the elaborate toystore
// application (Table 3). Expected relations per the paper:
//
//            Q1            Q2            Q3
//   U1   A=1,B=A,C<B   A=1,B<A,C=B   A=0 (all zero)
//   U2   A=0           A=0           A=1,B<A,C=B

#include <cstdio>

#include "analysis/ipm.h"
#include "workloads/toystore.h"

int main() {
  auto bundle = dssp::workloads::MakeToystore();
  DSSP_CHECK(bundle.ok());

  const dssp::analysis::IpmCharacterization ipm =
      dssp::analysis::IpmCharacterization::Compute(bundle->templates,
                                                   bundle->db->catalog());

  std::printf("Table 4 — IPM characterization, toystore (Table 3)\n\n");
  std::printf("%-6s", "");
  for (const auto& q : bundle->templates.queries()) {
    std::printf("  %-22s", q.id().c_str());
  }
  std::printf("\n");

  for (size_t u = 0; u < bundle->templates.num_updates(); ++u) {
    std::printf("%-6s", bundle->templates.updates()[u].id().c_str());
    for (size_t q = 0; q < bundle->templates.num_queries(); ++q) {
      const auto& pair = ipm.pair(u, q);
      char cell[64];
      if (pair.a_is_zero) {
        std::snprintf(cell, sizeof(cell), "A=B=C=0");
      } else {
        std::snprintf(cell, sizeof(cell), "A=1, %s, %s",
                      pair.b_equals_a ? "B=A" : "B<A",
                      pair.c_equals_b ? "C=B" : "C<B");
      }
      std::printf("  %-22s", cell);
    }
    std::printf("\n");
  }

  std::printf("\nRationales:\n");
  for (size_t u = 0; u < bundle->templates.num_updates(); ++u) {
    for (size_t q = 0; q < bundle->templates.num_queries(); ++q) {
      std::printf("  %s/%s: %s\n",
                  bundle->templates.updates()[u].id().c_str(),
                  bundle->templates.queries()[q].id().c_str(),
                  ipm.pair(u, q).rationale.c_str());
    }
  }
  return 0;
}
