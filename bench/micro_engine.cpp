// Microbenchmarks for the relational engine: point lookups, joins,
// aggregates, and update application on a populated bookstore database.
// The *Compiled variants run the same statement through a QueryProgram
// (compiled once, outside the timed loop) for a direct interpreter-vs-
// program comparison on each shape.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/micro_util.h"
#include "engine/program.h"
#include "sql/parser.h"

namespace {

using dssp::bench::BuildSystem;
using dssp::engine::QueryProgram;
using dssp::sql::ParseOrDie;

dssp::engine::Database& Db() {
  static auto* system = BuildSystem("bookstore", 1.0, 5).release();
  return system->app->home().database();
}

// The statement is parameterless, so Execute binds an empty param list.
QueryProgram CompileOrDie(const dssp::engine::Database& db,
                          const dssp::sql::Statement& stmt) {
  auto program = QueryProgram::Compile(db.catalog(), stmt.select());
  DSSP_CHECK(program.ok());
  return *std::move(program);
}

void BM_PointQueryByPrimaryKey(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto stmt = ParseOrDie("SELECT i_stock FROM item WHERE i_id = 417");
  for (auto _ : state) {
    auto result = db.ExecuteQuery(stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PointQueryByPrimaryKey);

void BM_PointQueryCompiled(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto program = CompileOrDie(
      db, ParseOrDie("SELECT i_stock FROM item WHERE i_id = 417"));
  for (auto _ : state) {
    auto result = program.Execute(db, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PointQueryCompiled);

void BM_SelectiveScanInterpreted(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto stmt =
      ParseOrDie("SELECT i_id, i_title FROM item WHERE i_cost >= 95.0");
  for (auto _ : state) {
    auto result = db.ExecuteQuery(stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectiveScanInterpreted);

void BM_SelectiveScanCompiled(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto program = CompileOrDie(
      db, ParseOrDie("SELECT i_id, i_title FROM item WHERE i_cost >= 95.0"));
  for (auto _ : state) {
    auto result = program.Execute(db, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectiveScanCompiled);

void BM_EquiJoinWithOrderByLimit(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto stmt = ParseOrDie(
      "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
      "WHERE item.i_a_id = author.a_id AND i_subject = 'SCIFI' "
      "ORDER BY i_title LIMIT 50");
  for (auto _ : state) {
    auto result = db.ExecuteQuery(stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EquiJoinWithOrderByLimit);

void BM_EquiJoinCompiled(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto program = CompileOrDie(
      db, ParseOrDie(
              "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
              "WHERE item.i_a_id = author.a_id AND i_subject = 'SCIFI' "
              "ORDER BY i_title LIMIT 50"));
  for (auto _ : state) {
    auto result = program.Execute(db, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EquiJoinCompiled);

void BM_GroupByAggregate(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto stmt = ParseOrDie(
      "SELECT i_subject, COUNT(i_id) FROM item WHERE i_cost >= 5.0 "
      "GROUP BY i_subject ORDER BY i_subject");
  for (auto _ : state) {
    auto result = db.ExecuteQuery(stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GroupByAggregate);

void BM_GroupByAggregateCompiled(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto program = CompileOrDie(
      db, ParseOrDie(
              "SELECT i_subject, COUNT(i_id) FROM item WHERE i_cost >= 5.0 "
              "GROUP BY i_subject ORDER BY i_subject"));
  for (auto _ : state) {
    auto result = program.Execute(db, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GroupByAggregateCompiled);

void BM_BestSellersJoinAggregate(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto stmt = ParseOrDie(
      "SELECT ol_i_id, SUM(ol_qty) FROM order_line, item "
      "WHERE order_line.ol_i_id = item.i_id AND i_subject = 'SCIFI' "
      "GROUP BY ol_i_id ORDER BY ol_i_id LIMIT 50");
  for (auto _ : state) {
    auto result = db.ExecuteQuery(stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BestSellersJoinAggregate);

void BM_ModificationByPrimaryKey(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto stmt =
      ParseOrDie("UPDATE item SET i_stock = 55 WHERE i_id = 611");
  for (auto _ : state) {
    auto effect = db.ExecuteUpdate(stmt);
    benchmark::DoNotOptimize(effect);
  }
}
BENCHMARK(BM_ModificationByPrimaryKey);

void BM_InsertDeleteRoundTrip(benchmark::State& state) {
  dssp::engine::Database& db = Db();
  const auto insert = ParseOrDie(
      "INSERT INTO shopping_cart (sc_id, sc_date) VALUES (7777777, 1)");
  const auto remove =
      ParseOrDie("DELETE FROM shopping_cart WHERE sc_id = 7777777");
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ExecuteUpdate(insert));
    benchmark::DoNotOptimize(db.ExecuteUpdate(remove));
  }
}
BENCHMARK(BM_InsertDeleteRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  return dssp::bench::RunBenchmarkMain(argc, argv);
}
