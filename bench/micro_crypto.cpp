// Microbenchmarks for the crypto substrate: SipHash, deterministic
// encryption across payload sizes (cache keys ~100 B, result blobs ~KBs).

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "crypto/keyring.h"

namespace {

void BM_SipHash(benchmark::State& state) {
  const std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(dssp::SipHash24(1, 2, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SipHash)->Arg(16)->Arg(256)->Arg(4096);

void BM_Encrypt(benchmark::State& state) {
  const auto cipher = dssp::crypto::KeyRing::FromPassphrase("bench")
                          .CipherFor("result");
  const std::string plaintext(state.range(0), 'p');
  for (auto _ : state) {
    std::string ct = cipher.Encrypt(plaintext);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Encrypt)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EncryptDecryptRoundTrip(benchmark::State& state) {
  const auto cipher = dssp::crypto::KeyRing::FromPassphrase("bench")
                          .CipherFor("result");
  const std::string plaintext(state.range(0), 'p');
  for (auto _ : state) {
    std::string pt = cipher.Decrypt(cipher.Encrypt(plaintext));
    benchmark::DoNotOptimize(pt);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncryptDecryptRoundTrip)->Arg(64)->Arg(1024)->Arg(16384);

void BM_KeyDerivation(benchmark::State& state) {
  const auto ring = dssp::crypto::KeyRing::FromPassphrase("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.CipherFor("params"));
  }
}
BENCHMARK(BM_KeyDerivation);

}  // namespace

BENCHMARK_MAIN();
