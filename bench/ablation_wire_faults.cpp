// Ablation: what does an unreliable DSSP<->home WAN cost, and what does the
// hardened wire path buy back? Sweeps a symmetric fault rate (applied to
// request/response drops, corruption, and duplication) over the bookstore
// workload with the retrying, integrity-sealed client enabled, with and
// without staleness-bounded degraded serving. Reports the wire-path
// counters the simulator now threads through AccessStats: retries,
// timeouts, stale serves, ops that exhausted the retry budget, and the
// home server's nonce-dedup suppressions (each one a prevented double
// application).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "dssp/channel.h"

namespace {

using dssp::bench::BuildSystem;
using dssp::service::DirectChannel;
using dssp::service::FaultInjectingChannel;
using dssp::service::FaultProfile;
using dssp::service::WirePolicy;

struct Row {
  dssp::sim::SimResult sim;
  uint64_t duplicates_suppressed = 0;
};

Row Run(double fault_rate, uint64_t stale_bound) {
  auto system = BuildSystem("bookstore", dssp::bench::BenchScale(), 17);

  FaultProfile profile;
  profile.drop_request = fault_rate;
  profile.drop_response = fault_rate;
  profile.corrupt_request = fault_rate / 2;
  profile.corrupt_response = fault_rate / 2;
  profile.duplicate_request = fault_rate / 2;
  profile.delay_probability = fault_rate;

  WirePolicy policy;
  policy.stale_serve_bound = stale_bound;
  system->app->SetWirePolicy(policy);
  if (stale_bound > 0) {
    system->node.SetStaleRetention(system->app->app_id(), 4096);
  }
  auto direct = std::make_unique<DirectChannel>(system->app->home());
  system->app->SetChannel(std::make_unique<FaultInjectingChannel>(
      *direct, profile, /*seed=*/0xFA17));

  auto generator = system->workload->NewSession(23);
  auto result =
      dssp::sim::RunSimulation(*system->app, *generator, 280,
                               dssp::bench::BenchSimConfig());
  DSSP_CHECK(result.ok());
  Row row;
  row.sim = *result;
  row.duplicates_suppressed = system->app->home().duplicates_suppressed();
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — wire fault tolerance (bookstore, 280 users, retrying "
      "sealed client)\n\n");
  std::printf("%7s | %8s %8s %8s %7s %7s | %8s %7s %7s\n", "faults",
              "p90 (s)", "retries", "timeout", "dedup", "failed", "degr p90",
              "stale#", "failed");
  std::printf("%s\n", std::string(80, '-').c_str());

  for (double fault_rate : {0.0, 0.01, 0.03, 0.05, 0.10, 0.15}) {
    // Left: retries only (stale_bound=0). Right: degraded mode allowed
    // (stale_bound=8) — failed queries may become bounded-stale answers.
    const Row hard = Run(fault_rate, /*stale_bound=*/0);
    const Row degraded = Run(fault_rate, /*stale_bound=*/8);
    std::printf(
        "%6.0f%% | %8.3f %8llu %8llu %7llu %7llu | %8.3f %7llu %7llu\n",
        fault_rate * 100, hard.sim.p90_response_s,
        static_cast<unsigned long long>(hard.sim.wire_retries),
        static_cast<unsigned long long>(hard.sim.wire_timeouts),
        static_cast<unsigned long long>(hard.duplicates_suppressed),
        static_cast<unsigned long long>(hard.sim.failed_ops),
        degraded.sim.p90_response_s,
        static_cast<unsigned long long>(degraded.sim.stale_serves),
        static_cast<unsigned long long>(degraded.sim.failed_ops));
  }

  std::printf(
      "\nInterpretation: the sealed retrying client absorbs moderate WAN "
      "fault rates\nwith a latency tax (timeout + backoff charges in the "
      "retry column) and no\ncorrectness loss — every dedup hit is a "
      "duplicate update the nonce check\nstopped from applying twice. As "
      "faults grow, ops start exhausting the retry\nbudget ('failed'); "
      "allowing bounded-staleness serves (right columns) converts\npart of "
      "that unavailability into slightly stale answers, which is the "
      "paper's\nscalability-vs-freshness trade taken to its degraded-mode "
      "extreme.\n");
  return 0;
}
