// Reproduces Table 2: invalidations for simple-toystore update U1 with
// parameter 5, as a function of what information the DSSP can access.
//
// Expected (paper):
//   blind                -> all of Q1, Q2, Q3
//   templates            -> all Q1, all Q2
//   templates+params     -> all Q1, Q2 only if toy_id = 5
//   templates+params+res -> Q1 only if its result contains toy 5,
//                           Q2 only if toy_id = 5

#include <cstdio>
#include <string>
#include <vector>

#include "invalidation/strategies.h"
#include "workloads/toystore.h"

namespace {

using dssp::analysis::ExposureLevel;
using dssp::invalidation::CachedQueryView;
using dssp::invalidation::Decision;
using dssp::invalidation::InvalidationStrategy;
using dssp::invalidation::UpdateView;
using dssp::sql::Value;

struct Instance {
  std::string label;
  std::string query_id;
  std::vector<Value> params;
};

}  // namespace

int main() {
  auto bundle = dssp::workloads::MakeSimpleToystore();
  DSSP_CHECK(bundle.ok());
  auto& [db, templates] = *bundle;
  const dssp::catalog::Catalog& catalog = db->catalog();

  // Cached instances. Toy 5 is named "toy5"; Q1('toy5') contains it, while
  // Q1('toy3') does not.
  const std::vector<Instance> instances = {
      {"Q1(toy_name='toy5')", "Q1", {Value("toy5")}},
      {"Q1(toy_name='toy3')", "Q1", {Value("toy3")}},
      {"Q2(toy_id=5)", "Q2", {Value(5)}},
      {"Q2(toy_id=7)", "Q2", {Value(7)}},
      {"Q3(cust_id=2)", "Q3", {Value(2)}},
  };

  const auto* u1 = templates.FindUpdate("U1");
  DSSP_CHECK(u1 != nullptr);
  const dssp::sql::Statement update_stmt = u1->Bind({Value(5)});

  dssp::invalidation::BlindStrategy blind;
  dssp::invalidation::TemplateInspectionStrategy tis(catalog);
  dssp::invalidation::StatementInspectionStrategy sis(catalog);
  dssp::invalidation::ViewInspectionStrategy vis(catalog);

  struct Scenario {
    const char* accessible;
    const InvalidationStrategy* strategy;
    ExposureLevel update_level;
    ExposureLevel query_level;
  };
  const Scenario scenarios[] = {
      {"nothing (blind)           ", &blind, ExposureLevel::kBlind,
       ExposureLevel::kBlind},
      {"templates                 ", &tis, ExposureLevel::kTemplate,
       ExposureLevel::kTemplate},
      {"templates+parameters      ", &sis, ExposureLevel::kStmt,
       ExposureLevel::kStmt},
      {"templates+params+results  ", &vis, ExposureLevel::kStmt,
       ExposureLevel::kView},
  };

  std::printf("Table 2 — invalidations on U1(toy_id=5), simple-toystore\n");
  std::printf("%-28s %s\n", "DSSP can access", "invalidated cached results");
  std::printf("%s\n", std::string(90, '-').c_str());

  for (const Scenario& scenario : scenarios) {
    UpdateView uv;
    uv.level = scenario.update_level;
    if (uv.level != ExposureLevel::kBlind) uv.tmpl = u1;
    if (uv.level == ExposureLevel::kStmt) uv.statement = &update_stmt;

    std::string invalidated;
    for (const Instance& instance : instances) {
      const auto* q = templates.FindQuery(instance.query_id);
      const dssp::sql::Statement stmt = q->Bind(instance.params);
      const auto result = db->ExecuteQuery(stmt);
      DSSP_CHECK(result.ok());

      CachedQueryView qv;
      qv.level = scenario.query_level;
      if (qv.level != ExposureLevel::kBlind) qv.tmpl = q;
      if (qv.level == ExposureLevel::kStmt ||
          qv.level == ExposureLevel::kView) {
        qv.statement = &stmt;
      }
      if (qv.level == ExposureLevel::kView) qv.result = &*result;

      if (scenario.strategy->Decide(uv, qv) == Decision::kInvalidate) {
        if (!invalidated.empty()) invalidated += ", ";
        invalidated += instance.label;
      }
    }
    std::printf("%-28s %s\n", scenario.accessible,
                invalidated.empty() ? "(none)" : invalidated.c_str());
  }

  std::printf(
      "\nPaper shape check: each row invalidates a subset of the row "
      "above it.\n");
  return 0;
}
