// Static application auditor CLI.
//
// Usage:  dssp_audit [app] [--json [path]] [--strict] [--no-info]
//                    [--hot U1,U2,...]
//
//   app       One of toystore | auction | bboard | bookstore (default:
//             bookstore).
//   --json    Emit the machine-readable report (schema documented in
//             analysis/audit.h) instead of text; with a path, write it there.
//   --strict  Exit nonzero when the report carries error-severity findings
//             (the same gate DsspNode::SetStrictRegistration applies).
//   --no-info Drop info-severity findings.
//   --hot     Comma-separated update template ids to treat as hot:
//             always-invalidate pairs they reach become warnings.
//
// The audited exposure assignment is the Section 3.1 methodology's
// recommendation for the application's compulsory-encryption policy — the
// same assignment the simulation deploys — so the report shows what the
// *shipped* configuration leaks and where it spends invalidation work.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/audit.h"
#include "analysis/methodology.h"
#include "crypto/keyring.h"
#include "dssp/app.h"
#include "dssp/node.h"
#include "workloads/application.h"

namespace {

std::vector<std::string> SplitCommas(const char* arg) {
  std::vector<std::string> out;
  std::string current;
  for (const char* p = arg; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current += *p;
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "bookstore";
  bool json = false;
  bool strict = false;
  bool include_info = true;
  std::string json_path;
  std::vector<std::string> hot;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--no-info") == 0) {
      include_info = false;
    } else if (std::strcmp(argv[i], "--hot") == 0 && i + 1 < argc) {
      hot = SplitCommas(argv[++i]);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: dssp_audit [app] [--json [path]] "
                   "[--strict] [--no-info] [--hot U1,U2,...]\n",
                   argv[i]);
      return 2;
    } else {
      name = argv[i];
    }
  }

  if (name != "toystore" && name != "auction" && name != "bboard" &&
      name != "bookstore") {
    std::fprintf(stderr,
                 "unknown application '%s' (expected toystore | auction | "
                 "bboard | bookstore)\n",
                 name.c_str());
    return 2;
  }

  dssp::service::DsspNode node;
  dssp::service::ScalableApp app(
      name, &node, dssp::crypto::KeyRing::FromPassphrase("audit"));
  auto workload = dssp::workloads::MakeApplication(name);
  DSSP_CHECK_OK(workload->Setup(app, /*scale=*/0.25, /*seed=*/1));
  DSSP_CHECK_OK(app.Finalize());
  const auto& templates = app.templates();
  const auto& catalog = app.home().database().catalog();

  const dssp::analysis::CompulsoryPolicy policy =
      workload->CompulsoryEncryption(catalog);
  const dssp::analysis::SecurityReport security =
      dssp::analysis::RunMethodology(templates, catalog, policy);

  dssp::analysis::AuditOptions options;
  options.exposure = &security.final;
  options.policy = &policy;
  options.hot_updates = std::move(hot);
  options.include_info = include_info;

  const dssp::analysis::AuditReport report =
      dssp::analysis::AuditApplication(templates, catalog, options);

  if (json) {
    const std::string text = report.ToJson();
    if (json_path.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      std::FILE* out = std::fopen(json_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 2;
      }
      std::fputs(text.c_str(), out);
      std::fclose(out);
    }
  } else {
    std::printf("dssp_audit — %s (methodology exposure, %zu queries / %zu "
                "updates)\n\n%s",
                name.c_str(), templates.num_queries(), templates.num_updates(),
                report.ToText().c_str());
  }

  return strict && !report.ok() ? 1 : 0;
}
